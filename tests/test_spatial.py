"""Tests for the R-tree and the spatial feature-index backend."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FixIndex, FixIndexConfig
from repro.datasets import load_dataset
from repro.query import twig_of
from repro.spatial import Rect, RTree, SpatialFeatureIndex


class TestRect:
    def test_point(self):
        point = Rect.point(1.0, 2.0)
        assert point.min_x == point.max_x == 1.0
        assert point.area() == 0.0

    def test_union(self):
        merged = Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3))
        assert merged == Rect(0, 0, 3, 3)

    def test_enlargement(self):
        base = Rect(0, 0, 1, 1)
        assert base.enlargement(Rect(0, 0, 2, 1)) == pytest.approx(1.0)
        assert base.enlargement(Rect(0.2, 0.2, 0.8, 0.8)) == 0.0

    def test_intersects(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(1, 1, 3, 3))
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))
        # Edge touching counts as intersecting.
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 1, 2, 2))

    def test_quarter_plane(self):
        rect = Rect(0, 0, 2, 2)
        assert rect.intersects_quarter_plane(0.0, 2.0)
        assert rect.intersects_quarter_plane(5.0, -5.0)
        assert not rect.intersects_quarter_plane(-1.0, 0.0)  # all x > qx
        assert not rect.intersects_quarter_plane(1.0, 3.0)  # all y < qy


def reference_dominating(points, qx, qy):
    return sorted(v for (x, y), v in points if x <= qx and y >= qy)


class TestRTree:
    def test_insert_and_window_search(self):
        tree = RTree(max_entries=4)
        for i in range(50):
            tree.insert(Rect.point(float(i), float(i)), i)
        hits = sorted(tree.search(Rect(10, 10, 20, 20)))
        assert hits == list(range(10, 21))

    def test_split_grows_height(self):
        tree = RTree(max_entries=4)
        for i in range(100):
            tree.insert(Rect.point(float(i % 10), float(i // 10)), i)
        assert tree.height() >= 2
        assert len(tree) == 100

    def test_dominance_query(self):
        tree = RTree(max_entries=4)
        points = [((float(x), float(y)), (x, y)) for x in range(8) for y in range(8)]
        for (x, y), value in points:
            tree.insert(Rect.point(x, y), value)
        got = sorted(tree.search_dominating(3.0, 5.0))
        assert got == reference_dominating(points, 3.0, 5.0)

    def test_bulk_load_equals_insert(self):
        rng = random.Random(5)
        points = [
            ((rng.uniform(-10, 10), rng.uniform(-10, 10)), i) for i in range(200)
        ]
        inserted = RTree(max_entries=8)
        for (x, y), value in points:
            inserted.insert(Rect.point(x, y), value)
        bulk = RTree.bulk_load(
            [(Rect.point(x, y), v) for (x, y), v in points], max_entries=8
        )
        assert len(bulk) == len(inserted) == 200
        window = Rect(-5, -5, 5, 5)
        assert sorted(bulk.search(window)) == sorted(inserted.search(window))

    def test_empty_tree(self):
        tree = RTree()
        assert list(tree.search(Rect(0, 0, 1, 1))) == []
        assert list(tree.search_dominating(0, 0)) == []
        bulk = RTree.bulk_load([])
        assert len(bulk) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)

    def test_stats_counters(self):
        tree = RTree(max_entries=4)
        for i in range(40):
            tree.insert(Rect.point(float(i), float(i)), i)
        tree.reset_stats()
        list(tree.search(Rect(0, 0, 5, 5)))
        assert tree.nodes_visited > 0
        assert tree.entries_inspected > 0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-100, max_value=100),
                st.floats(min_value=-100, max_value=100),
            ),
            min_size=1,
            max_size=120,
        ),
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
    )
    def test_property_dominance_matches_reference(self, raw_points, qx, qy):
        points = [((x, y), i) for i, (x, y) in enumerate(raw_points)]
        tree = RTree.bulk_load(
            [(Rect.point(x, y), v) for (x, y), v in points], max_entries=6
        )
        assert sorted(tree.search_dominating(qx, qy)) == reference_dominating(
            points, qx, qy
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-50, max_value=50),
                st.floats(min_value=-50, max_value=50),
            ),
            min_size=1,
            max_size=100,
        ),
        st.data(),
    )
    def test_property_window_matches_reference(self, raw_points, data):
        points = [((x, y), i) for i, (x, y) in enumerate(raw_points)]
        tree = RTree(max_entries=5)
        for (x, y), value in points:
            tree.insert(Rect.point(x, y), value)
        x1 = data.draw(st.floats(min_value=-50, max_value=50))
        x2 = data.draw(st.floats(min_value=-50, max_value=50))
        y1 = data.draw(st.floats(min_value=-50, max_value=50))
        y2 = data.draw(st.floats(min_value=-50, max_value=50))
        window = Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        expected = sorted(
            v
            for (x, y), v in points
            if window.min_x <= x <= window.max_x and window.min_y <= y <= window.max_y
        )
        assert sorted(tree.search(window)) == expected


class TestSpatialFeatureIndex:
    @pytest.fixture(scope="class")
    def built(self):
        bundle = load_dataset("xmark", scale=0.15, seed=9)
        index = FixIndex.build(
            bundle.store(), FixIndexConfig(depth_limit=bundle.depth_limit)
        )
        return index, SpatialFeatureIndex(index)

    @pytest.mark.parametrize(
        "query",
        [
            "//item[name]/mailbox",
            "//open_auction[seller]/annotation",
            "//person[phone]",
            "//description/parlist/listitem",
            "//missing",
        ],
    )
    def test_candidates_identical_to_btree(self, built, query):
        index, spatial = built
        key = index.query_features(twig_of(query))
        btree_candidates = {e.pointer for e in index.candidates_for_key(key)}
        rtree_candidates = {e.pointer for e in spatial.candidates_for_key(key)}
        assert btree_candidates == rtree_candidates

    def test_rtree_inspects_fewer_entries_than_label_scan(self, built):
        index, spatial = built
        spatial.reset_stats()
        key = index.query_features(twig_of("//item[name]/mailbox"))
        list(spatial.candidates_for_key(key))
        label_entries = sum(
            1 for e in index.iter_entries() if e.key.root_label == "item"
        )
        assert spatial.entries_inspected() <= label_entries

    def test_publish_after_reset_keeps_registry_monotonic(self, built):
        from repro.obs import MetricsRegistry

        index, spatial = built
        registry = MetricsRegistry()
        key = index.query_features(twig_of("//person[phone]"))
        list(spatial.candidates_for_key(key))
        spatial.publish(registry)
        visited = registry.counter("rtree.nodes_visited").value
        inspected = registry.counter("rtree.entries_inspected").value
        assert visited > 0
        spatial.reset_stats()
        spatial.publish(registry)  # totals dropped to 0: must not regress
        assert registry.counter("rtree.nodes_visited").value == visited
        assert registry.counter("rtree.entries_inspected").value == inspected

    def test_all_covering_entries_always_returned(self):
        bundle = load_dataset("treebank", scale=0.05, seed=3)
        index = FixIndex.build(
            bundle.store(),
            FixIndexConfig(depth_limit=6, max_pattern_vertices=4),
        )
        assert index.report.stats.oversized_patterns > 0
        spatial = SpatialFeatureIndex(index)
        key = index.query_features(twig_of("//S[VP]/NP"))
        btree_candidates = {e.pointer for e in index.candidates_for_key(key)}
        rtree_candidates = {e.pointer for e in spatial.candidates_for_key(key)}
        assert btree_candidates == rtree_candidates

    def test_labels(self, built):
        _, spatial = built
        assert "item" in spatial.labels()

"""Failure-injection tests: corrupted pages, truncated files, and other
storage-level damage must surface as typed errors, never as silent wrong
answers or uncaught low-level exceptions."""

from __future__ import annotations

import os
import struct

import pytest

from repro.errors import BTreeError, PageError, RecordError, StorageError
from repro.btree import BPlusTree
from repro.btree.node import LeafNode, deserialize_node
from repro.core import FixIndex, FixIndexConfig, load_index, save_index
from repro.storage import Pager, PrimaryXMLStore, RecordFile, RecordPointer
from repro.xmltree import parse_xml


class TestPagerDamage:
    def test_file_not_multiple_of_page_size(self, tmp_path):
        path = tmp_path / "bad.pages"
        path.write_bytes(b"x" * 1000)  # not a multiple of 4096
        with pytest.raises(PageError):
            Pager(os.fspath(path))

    def test_truncated_file_reads_zero_extended(self, tmp_path):
        # A crash can leave allocated-but-unflushed pages past EOF; reads
        # must return zeroed pages, not raise.
        path = os.fspath(tmp_path / "trunc.pages")
        with Pager(path) as pager:
            pager.allocate()
            pager.allocate()
            pager.flush()
        os.truncate(path, 4096)  # drop the second page
        # Reattach with the original page count (as a caller holding
        # stale metadata would).
        pager = Pager(path)
        assert pager.page_count == 1


class TestRecordDamage:
    def test_corrupted_slot_directory(self):
        pager = Pager()
        records = RecordFile(pager)
        pointer = records.append(b"payload")
        # Stamp an absurd slot count into the page header.
        page = pager.read(pointer.page_id)
        struct.pack_into("<HH", page, 0, 9999, 0)
        pager.mark_dirty(pointer.page_id)
        with pytest.raises((RecordError, struct.error)):
            records.read(RecordPointer(pointer.page_id, 5000))

    def test_truncated_overflow_chain(self):
        pager = Pager()
        records = RecordFile(pager)
        big = bytes(range(256)) * 64  # forces overflow pages
        pointer = records.append(big)
        # Break the chain: point the head segment's continuation at a
        # page full of zeros (next=0 -> page 0, which has no real data).
        head = pager.read(pointer.page_id)
        # Head layout: slots... find the segment: offset from slot 0.
        slot_offset, _length = struct.unpack_from("<HH", head, 4)
        total, _cont = struct.unpack_from("<II", head, slot_offset)
        zero_page = pager.allocate()
        buffer = bytearray(pager.page_size)
        struct.pack_into("<I", buffer, 0, 0xFFFFFFFF)
        pager.write(zero_page, buffer)
        struct.pack_into("<II", head, slot_offset, total, zero_page)
        pager.mark_dirty(pointer.page_id)
        with pytest.raises(RecordError):
            records.read(pointer)


class TestBTreeDamage:
    def test_unknown_page_type(self):
        with pytest.raises(BTreeError):
            deserialize_node(bytes([77]) + b"\x00" * 255)

    def test_corrupt_page_on_reopen(self, tmp_path):
        path = os.fspath(tmp_path / "tree.pages")
        with Pager(path, page_size=256) as pager:
            tree = BPlusTree(pager)
            for i in range(100):
                tree.insert(f"{i:04d}".encode(), b"v")
            tree.flush()
            root, count = tree.root_page, len(tree)
        # Scribble over every page.
        with open(path, "r+b") as handle:
            handle.seek(0)
            handle.write(b"\xde\xad\xbe\xef" * 64)
        with Pager(path, page_size=256) as pager:
            reopened = BPlusTree.open(pager, root, count)
            with pytest.raises(BTreeError):
                list(reopened.scan())

    def test_leaf_chain_truncation_detected_by_invariants(self):
        tree = BPlusTree(Pager(page_size=256))
        for i in range(200):
            tree.insert(f"{i:04d}".encode(), b"v")
        # Damage: lop entries off a leaf behind the tree's back.
        leaf_page = tree._leftmost_leaf()
        node = tree._node(leaf_page, count=False)
        assert isinstance(node, LeafNode)
        del node.keys[1:], node.values[1:]
        with pytest.raises(BTreeError):
            tree.check_invariants()


class TestIndexDirectoryDamage:
    def build(self, tmp_path):
        store = PrimaryXMLStore()
        store.add_document(parse_xml("<a><b><c/></b><d/></a>"))
        index = FixIndex.build(store, FixIndexConfig(depth_limit=3))
        directory = os.fspath(tmp_path / "idx")
        save_index(index, directory)
        return store, directory

    def test_missing_btree_pages(self, tmp_path):
        store, directory = self.build(tmp_path)
        os.remove(os.path.join(directory, "btree.pages"))
        with pytest.raises((StorageError, FileNotFoundError, PageError)):
            index = load_index(directory, store)
            list(index.iter_entries())

    def test_garbage_btree_pages(self, tmp_path):
        store, directory = self.build(tmp_path)
        pages_path = os.path.join(directory, "btree.pages")
        size = os.path.getsize(pages_path)
        with open(pages_path, "wb") as handle:
            handle.write(b"\xff" * size)
        index = load_index(directory, store)
        with pytest.raises(BTreeError):
            list(index.iter_entries())

    def test_metadata_missing_fields(self, tmp_path):
        store, directory = self.build(tmp_path)
        meta_path = os.path.join(directory, "meta.json")
        with open(meta_path, "w") as handle:
            handle.write('{"format_version": 1}')
        with pytest.raises((StorageError, KeyError)):
            load_index(directory, store)


class TestParserResilience:
    """Pathological-but-legal inputs the parser must survive."""

    def test_very_deep_document(self):
        depth = 20000
        source = "<n>" * depth + "</n>" * depth
        document = parse_xml(source)
        assert document.max_depth() == depth

    def test_very_wide_document(self):
        source = "<r>" + "<c/>" * 50000 + "</r>"
        document = parse_xml(source)
        assert document.element_count() == 50001

    def test_huge_text_node(self):
        source = f"<a>{'x' * 1_000_000}</a>"
        assert len(parse_xml(source).root.text()) == 1_000_000

    def test_many_attributes(self):
        attrs = " ".join(f'a{i}="{i}"' for i in range(500))
        document = parse_xml(f"<e {attrs}/>")
        assert len(document.root.attributes) == 500

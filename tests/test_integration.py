"""Cross-system integration and property tests: every evaluator in the
repository — brute force, navigational, structural join, F&B, FIX
(unclustered and clustered, via both refiners), and the optimizer — must
agree on arbitrary generated workloads within the regime where FIX is
complete (stratified labels; see DESIGN.md §5a)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FBEvaluator,
    FBIndex,
    FixIndex,
    FixIndexConfig,
    FixQueryProcessor,
    NavigationalEngine,
    QueryOptimizer,
    StructuralJoinEngine,
    SpatialFeatureIndex,
    matching_elements,
    twig_of,
)
from repro.storage import PrimaryXMLStore
from repro.xmltree import Document, Element

_LEVELS = [["top"], ["alpha", "beta"], ["left", "right"], ["leaf", "tip"]]


@st.composite
def stratified_documents(draw) -> Document:
    """Random trees whose labels never repeat along a path."""
    root = Element("top")
    frontier = [root]
    for level in range(1, len(_LEVELS)):
        next_frontier: list[Element] = []
        for parent in frontier:
            for _ in range(draw(st.integers(min_value=0, max_value=3))):
                child = parent.add_element(draw(st.sampled_from(_LEVELS[level])))
                next_frontier.append(child)
        if not next_frontier:
            break
        frontier = next_frontier[:8]
    return Document(root)


@st.composite
def stratified_queries(draw) -> str:
    start = draw(st.integers(min_value=0, max_value=2))
    parts = ["//", draw(st.sampled_from(_LEVELS[start]))]
    level = start
    while level + 1 < len(_LEVELS) and draw(st.booleans()):
        level += 1
        label = draw(st.sampled_from(_LEVELS[level]))
        if draw(st.booleans()):
            parts.append(f"[{label}]")
        else:
            parts.extend(["/", label])
    return "".join(parts)


class TestAllSystemsAgree:
    @settings(max_examples=40, deadline=None)
    @given(stratified_documents(), stratified_queries())
    def test_six_evaluation_paths(self, document, query):
        store = PrimaryXMLStore()
        store.add_document(document)
        twig = twig_of(query)
        expected = {e.node_id for e in matching_elements(twig, document)}

        # 1. NoK-style navigation, no index.
        navigational = {
            p.node_id for p in NavigationalEngine(store).evaluate(twig)
        }
        assert navigational == expected

        # 2. Structural joins, no index.
        join_based = {
            p.node_id for p in StructuralJoinEngine(store).evaluate(twig)
        }
        assert join_based == expected

        # 3. F&B covering index.
        fb = set(FBEvaluator(FBIndex(document)).evaluate(twig))
        assert fb == expected

        # 4. FIX unclustered + navigational refiner.
        unclustered = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        fix_u = {
            p.node_id
            for p in FixQueryProcessor(unclustered).query(twig).results
        }
        assert fix_u == expected

        # 5. FIX clustered + structural-join refiner.
        clustered = FixIndex.build(
            store, FixIndexConfig(depth_limit=4, clustered=True)
        )
        fix_c = {
            p.node_id
            for p in FixQueryProcessor(
                clustered, refiner=StructuralJoinEngine(store)
            )
            .query(twig)
            .results
        }
        assert fix_c == expected

        # 6. Optimizer (whichever path it picks).
        _, result = QueryOptimizer(unclustered).execute(twig)
        assert {p.node_id for p in result.results} == expected

    @settings(max_examples=25, deadline=None)
    @given(stratified_documents(), stratified_queries())
    def test_spatial_backend_agrees_with_btree(self, document, query):
        store = PrimaryXMLStore()
        store.add_document(document)
        index = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        spatial = SpatialFeatureIndex(index)
        key = index.query_features(twig_of(query))
        assert {e.pointer for e in index.candidates_for_key(key)} == {
            e.pointer for e in spatial.candidates_for_key(key)
        }


class TestEndToEndUnicode:
    """Labels and values outside ASCII must flow through every layer:
    parser, encoder, B-tree keys, persistence, refinement."""

    XML = (
        "<बिब>"
        "<论文><作者>müller</作者><título/></论文>"
        "<论文><作者>østergård</作者></论文>"
        "</बिब>"
    )

    def test_structural_pipeline(self):
        from repro.xmltree import parse_xml

        store = PrimaryXMLStore()
        store.add_document(parse_xml(self.XML))
        index = FixIndex.build(store, FixIndexConfig(depth_limit=3))
        processor = FixQueryProcessor(index)
        result = processor.query("//论文[título]")
        assert result.result_count == 1

    def test_value_pipeline(self):
        from repro.xmltree import parse_xml

        store = PrimaryXMLStore()
        store.add_document(parse_xml(self.XML))
        index = FixIndex.build(
            store, FixIndexConfig(depth_limit=3, value_buckets=8)
        )
        processor = FixQueryProcessor(index)
        assert processor.query('//论文[作者 = "müller"]').result_count == 1
        assert processor.query('//论文[作者 = "nobody"]').result_count == 0

    def test_persistence_roundtrip(self, tmp_path):
        import os

        from repro import load_index, save_index
        from repro.xmltree import parse_xml

        store = PrimaryXMLStore()
        store.add_document(parse_xml(self.XML))
        index = FixIndex.build(store, FixIndexConfig(depth_limit=3))
        directory = os.fspath(tmp_path / "idx")
        save_index(index, directory)
        reloaded = load_index(directory, store)
        result = FixQueryProcessor(reloaded).query("//论文/作者")
        assert result.result_count == 2


class TestDecomposeProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_fragment_count_equals_descendant_edges_plus_one(self, data):
        from repro.query import decompose

        # Build a random query string with counted '//' occurrences.
        labels = ["a", "b", "c"]
        parts = ["//", data.draw(st.sampled_from(labels))]
        descendant_edges = 0
        for _ in range(data.draw(st.integers(min_value=0, max_value=4))):
            axis = data.draw(st.sampled_from(["/", "//"]))
            if axis == "//":
                descendant_edges += 1
            parts.extend([axis, data.draw(st.sampled_from(labels))])
        query = "".join(parts)
        fragments = decompose(query)
        assert len(fragments) == descendant_edges + 1
        assert all(f.is_structural_twig() for f in fragments)

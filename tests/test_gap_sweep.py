"""Smoke and invariant tests for the gap-quantification experiment."""

from __future__ import annotations

from repro.bench.gap import GapRow, print_gap_sweep, run_gap_sweep


class TestGapSweep:
    def test_small_sweep_shape(self):
        rows = run_gap_sweep(nestings=(1, 2), documents=30, seed=1)
        assert rows
        cells = {(row.max_nesting, row.chain_length) for row in rows}
        assert (1, 2) in cells
        assert (2, 4) in cells

    def test_no_loss_without_label_repetition(self):
        # Chain length 2 = parlist/listitem once: no repeated label pair
        # on the query path, so no cell at that length may lose answers.
        rows = run_gap_sweep(nestings=(1, 2, 3), documents=40, seed=2)
        for row in rows:
            if row.chain_length == 2:
                assert row.false_negatives == 0

    def test_loss_rate_bounds(self):
        rows = run_gap_sweep(nestings=(1, 2, 3), documents=40, seed=3)
        for row in rows:
            assert 0 <= row.false_negatives <= row.true_results
            assert 0.0 <= row.loss_rate <= 1.0

    def test_deep_recursion_loses_answers(self):
        # The §5a finding must reproduce at modest scale.  Which corpora
        # lose answers is knife-edge-sensitive to the edge-weight codes
        # (first-seen encoder order), so the seed pins a corpus that
        # exhibits the gap under the deterministic document-order
        # seeding used by the build pipeline.
        rows = run_gap_sweep(nestings=(3,), documents=80, seed=0)
        assert any(row.false_negatives > 0 for row in rows)

    def test_zero_results_row(self):
        assert GapRow(1, 2, 0, 0).loss_rate == 0.0

    def test_print_renders(self, capsys):
        rows = run_gap_sweep(nestings=(1,), documents=10, seed=5)
        print_gap_sweep(rows)
        assert "Theorem 5 gap" in capsys.readouterr().out

    def test_deterministic_under_seed(self):
        a = run_gap_sweep(nestings=(2,), documents=25, seed=7)
        b = run_gap_sweep(nestings=(2,), documents=25, seed=7)
        assert [(r.true_results, r.false_negatives) for r in a] == [
            (r.true_results, r.false_negatives) for r in b
        ]

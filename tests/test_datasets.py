"""Tests for the synthetic data-set generators and the random-query
generator: determinism, scaling, and the structural characters the
paper's Section 6.1 relies on."""

from __future__ import annotations

import pytest

from repro.bisim import bisim_graph_of_document
from repro.datasets import (
    RandomQueryGenerator,
    dataset_names,
    load_dataset,
)
from repro.query import matching_elements, query_matches_document, twig_of
from repro.xmltree import serialize


class TestRegistry:
    def test_names(self):
        assert dataset_names() == ["xbench", "dblp", "xmark", "treebank"]

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            load_dataset("nope")

    @pytest.mark.parametrize("name", dataset_names())
    def test_deterministic_under_seed(self, name):
        a = load_dataset(name, scale=0.05, seed=7)
        b = load_dataset(name, scale=0.05, seed=7)
        assert len(a.documents) == len(b.documents)
        assert serialize(a.documents[0]) == serialize(b.documents[0])

    @pytest.mark.parametrize("name", dataset_names())
    def test_seed_changes_content(self, name):
        a = load_dataset(name, scale=0.05, seed=1)
        b = load_dataset(name, scale=0.05, seed=2)
        assert serialize(a.documents[0]) != serialize(b.documents[0])

    @pytest.mark.parametrize("name", dataset_names())
    def test_scale_grows_content(self, name):
        small = load_dataset(name, scale=0.05)
        large = load_dataset(name, scale=0.2)
        assert large.element_count() > small.element_count()

    @pytest.mark.parametrize("name", dataset_names())
    def test_bundle_accessors(self, name):
        bundle = load_dataset(name, scale=0.05)
        assert bundle.size_bytes() > 0
        assert bundle.max_depth() >= 3
        store = bundle.store()
        assert store.document_count == len(bundle.documents)


class TestXBenchCharacter:
    def test_many_small_documents(self):
        bundle = load_dataset("xbench", scale=0.2)
        assert len(bundle.documents) > 20
        assert all(d.element_count() < 200 for d in bundle.documents)
        assert bundle.depth_limit == 0

    def test_low_structural_variation(self):
        # Few distinct document shapes: the whole collection's bisim
        # graphs use a small shared vocabulary.
        bundle = load_dataset("xbench", scale=0.2)
        labels = set()
        for document in bundle.documents:
            labels |= {e.tag for e in document.root.iter()}
        assert len(labels) < 25

    def test_paper_queries_have_matches(self):
        bundle = load_dataset("xbench", scale=0.3)
        for query in [
            "/article/epilog[acknoledgements]/references/a_id",
            "/article/prolog[keywords]/authors/author/contact[phone]",
            "/article[epilog]/prolog/authors/author",
        ]:
            twig = twig_of(query)
            assert any(
                query_matches_document(twig, d) for d in bundle.documents
            ), query


class TestDBLPCharacter:
    def test_single_shallow_document(self):
        bundle = load_dataset("dblp", scale=0.1)
        assert len(bundle.documents) == 1
        assert bundle.max_depth() <= 5

    def test_high_repetition(self):
        # Regularity: the bisimulation graph is tiny relative to the tree.
        bundle = load_dataset("dblp", scale=0.1)
        document = bundle.documents[0]
        graph = bisim_graph_of_document(document)
        assert graph.vertex_count() < document.element_count() / 10

    def test_real_values_present(self):
        bundle = load_dataset("dblp", scale=0.1)
        document = bundle.documents[0]
        publishers = {
            e.text() for e in document.root.find_all("publisher")
        }
        assert "Springer" in publishers
        years = {e.text() for e in document.root.find_all("year")}
        assert "1998" in years

    def test_paper_queries_have_matches(self):
        bundle = load_dataset("dblp", scale=0.3)
        document = bundle.documents[0]
        for query in [
            "//proceedings[booktitle]/title",
            "//article[number]/author",
            "//inproceedings[url]/title",
            "//dblp/inproceedings/author",
            '//proceedings[publisher = "Springer"][title]',
        ]:
            assert matching_elements(twig_of(query), document), query

    def test_markup_combination_is_rare(self):
        # //...title[sub][i] is the paper's hi-selectivity case.
        bundle = load_dataset("dblp", scale=0.5)
        document = bundle.documents[0]
        rare = matching_elements(twig_of("//inproceedings[url]/title[sub][i]"), document)
        common = matching_elements(twig_of("//inproceedings/title"), document)
        assert len(rare) < len(common) / 20


class TestXMarkCharacter:
    def test_structure_rich(self):
        bundle = load_dataset("xmark", scale=0.3)
        document = bundle.documents[0]
        graph = bisim_graph_of_document(document)
        # Less repetitive than DBLP: far more classes per element.
        assert graph.vertex_count() > document.element_count() / 60
        assert bundle.max_depth() >= 9

    def test_paper_queries_have_matches(self):
        bundle = load_dataset("xmark", scale=0.5)
        document = bundle.documents[0]
        for query in [
            "//category/description[parlist]/parlist/listitem/text",
            "//closed_auction/annotation/description/text",
            "//open_auction[seller]/annotation/description/text",
            "//item/mailbox/mail/text/emph/keyword",
            "//description/parlist/listitem",
            "//item[name]/mailbox/mail[to]/text[bold]/emph/bold",
        ]:
            assert matching_elements(twig_of(query), document), query


class TestTreebankCharacter:
    def test_deep_recursion(self):
        bundle = load_dataset("treebank", scale=0.2)
        assert bundle.max_depth() >= 12
        document = bundle.documents[0]
        # Recursive structure: S below S somewhere.
        assert matching_elements(twig_of("//S//S"), document)

    def test_high_selectivity_structures(self):
        bundle = load_dataset("treebank", scale=0.2)
        document = bundle.documents[0]
        graph = bisim_graph_of_document(document)
        # Structures rarely repeat: many classes per element.
        assert graph.vertex_count() > document.element_count() / 12

    def test_paper_queries_have_matches(self):
        bundle = load_dataset("treebank", scale=0.5)
        document = bundle.documents[0]
        for query in [
            "//EMPTY/S/NP[PP]/NP",
            "//S[VP]/NP/NP/PP/NP",
            "//EMPTY/S[VP]/NP",
            "//EMPTY/S/NP/NP/PP",
            "//EMPTY/S/VP",
        ]:
            assert matching_elements(twig_of(query), document), query


class TestRandomQueryGenerator:
    def make(self):
        bundle = load_dataset("xmark", scale=0.1)
        return bundle, RandomQueryGenerator(bundle.documents, seed=3)

    def test_queries_are_twigs(self):
        _, generator = self.make()
        for _ in range(50):
            generated = generator.generate()
            assert generated.twig.is_structural_twig()

    def test_rendered_text_reparses_equivalently(self):
        bundle, generator = self.make()
        document = bundle.documents[0]
        for _ in range(30):
            generated = generator.generate()
            reparsed = twig_of(generated.text)
            left = {e.node_id for e in matching_elements(generated.twig, document)}
            right = {e.node_id for e in matching_elements(reparsed, document)}
            assert left == right

    def test_unmutated_queries_match_data(self):
        bundle, generator = self.make()
        document = bundle.documents[0]
        hits = 0
        total = 0
        for _ in range(60):
            generated = generator.generate()
            if generated.mutated:
                continue
            total += 1
            if matching_elements(generated.twig, document):
                hits += 1
        # Upward-walk anchoring guarantees the main path exists; the only
        # misses come from predicate placement subtleties, so the hit
        # rate must be overwhelming.
        assert hits >= total * 0.9

    def test_deterministic(self):
        bundle = load_dataset("xmark", scale=0.1)
        a = RandomQueryGenerator(bundle.documents, seed=5)
        b = RandomQueryGenerator(bundle.documents, seed=5)
        assert [a.generate().text for _ in range(20)] == [
            b.generate().text for _ in range(20)
        ]

    def test_batch_filter(self):
        _, generator = self.make()
        batch = generator.batch(10, keep=lambda g: not g.mutated)
        assert len(batch) == 10
        assert all(not g.mutated for g in batch)

    def test_empty_documents_rejected(self):
        with pytest.raises(ValueError):
            RandomQueryGenerator([])

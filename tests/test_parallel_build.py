"""Tests for the parallel build pipeline (DESIGN.md §8).

The contract under test: ``workers > 1`` yields **byte-identical**
B-tree contents to the serial build — same keys, same values, same
duplicate-key order — for any worker count and configuration.
"""

from __future__ import annotations

import pytest

from repro.errors import FeatureError
from repro.core import FixIndex, FixIndexConfig
from repro.core.parallel import parallel_stage
from repro.core.construction import seed_encoder
from repro.datasets import load_dataset
from repro.spectral import EdgeLabelEncoder
from repro.storage import PrimaryXMLStore
from repro.xmltree import parse_xml

DOCS = [
    "<bib><article><author><email/></author><title/></article></bib>",
    "<bib><article><author><phone/></author><title/></article></bib>",
    "<bib><book><author><affiliation/></author><title/></book></bib>",
    "<site><regions><item><name/><mailbox><mail/></mailbox></item>"
    "<item><name/></item></regions></site>",
    "<bib><www><title/></www></bib>",
]


def multi_doc_store() -> PrimaryXMLStore:
    store = PrimaryXMLStore()
    for source in DOCS:
        store.add_document(parse_xml(source))
    return store


def items_of(index: FixIndex) -> list[tuple[bytes, bytes]]:
    """Every (key bytes, value bytes) pair in B-tree order."""
    return [(bytes(key), bytes(value)) for key, value in index.btree.items()]


class TestByteIdenticalToSerial:
    def test_workers_2_identical_items(self):
        store = multi_doc_store()
        serial = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        parallel = FixIndex.build(
            store, FixIndexConfig(depth_limit=4, workers=2)
        )
        assert items_of(serial) == items_of(parallel)

    @pytest.mark.parametrize("workers", [2, 3, 5, 8])
    def test_any_worker_count(self, workers):
        store = multi_doc_store()
        serial = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        parallel = FixIndex.build(
            store, FixIndexConfig(depth_limit=4, workers=workers)
        )
        assert items_of(serial) == items_of(parallel)

    def test_identical_without_cache(self):
        store = multi_doc_store()
        serial = FixIndex.build(
            store, FixIndexConfig(depth_limit=4, feature_cache=False)
        )
        parallel = FixIndex.build(
            store,
            FixIndexConfig(depth_limit=4, workers=3, feature_cache=False),
        )
        assert items_of(serial) == items_of(parallel)

    def test_identical_with_values(self):
        store = multi_doc_store()
        config = dict(depth_limit=4, value_buckets=8)
        serial = FixIndex.build(store, FixIndexConfig(**config))
        parallel = FixIndex.build(
            store, FixIndexConfig(workers=2, **config)
        )
        assert items_of(serial) == items_of(parallel)

    def test_identical_clustered(self):
        store = multi_doc_store()
        serial = FixIndex.build(
            store, FixIndexConfig(depth_limit=4, clustered=True)
        )
        parallel = FixIndex.build(
            store, FixIndexConfig(depth_limit=4, clustered=True, workers=2)
        )
        assert items_of(serial) == items_of(parallel)

    def test_identical_on_dblp_like_corpus(self):
        store = PrimaryXMLStore()
        for offset in range(4):
            for document in load_dataset(
                "dblp", scale=0.01, seed=30 + offset
            ).documents:
                store.add_document(document)
        serial = FixIndex.build(store, FixIndexConfig(depth_limit=6))
        parallel = FixIndex.build(
            store, FixIndexConfig(depth_limit=6, workers=2)
        )
        assert items_of(serial) == items_of(parallel)

    def test_stats_and_entry_counts_match(self):
        store = multi_doc_store()
        serial = FixIndex.build(store, FixIndexConfig(depth_limit=4))
        parallel = FixIndex.build(
            store, FixIndexConfig(depth_limit=4, workers=2)
        )
        assert serial.entry_count == parallel.entry_count
        assert (
            serial.report.stats.entries == parallel.report.stats.entries
        )
        assert (
            serial.report.stats.bisim_vertices
            == parallel.report.stats.bisim_vertices
        )
        assert (
            serial.report.stats.per_document_vertices
            == parallel.report.stats.per_document_vertices
        )


class TestParallelStage:
    def test_single_document_runs_inline(self):
        store = PrimaryXMLStore()
        store.add_document(parse_xml(DOCS[0]))
        encoder = EdgeLabelEncoder()
        seed_encoder(encoder, store.get_document(0))
        staged = parallel_stage(store, encoder, 4, workers=4)
        assert staged.entries
        assert all(doc_id == 0 for _, doc_id, _ in staged.entries)

    def test_entries_in_doc_id_order(self):
        store = multi_doc_store()
        encoder = EdgeLabelEncoder()
        for doc_id in store.doc_ids():
            seed_encoder(encoder, store.get_document(doc_id))
        staged = parallel_stage(store, encoder, 4, workers=2)
        doc_sequence = [doc_id for _, doc_id, _ in staged.entries]
        assert doc_sequence == sorted(doc_sequence)

    def test_worker_encoders_merge_back(self):
        store = multi_doc_store()
        encoder = EdgeLabelEncoder()
        for doc_id in store.doc_ids():
            seed_encoder(encoder, store.get_document(doc_id))
        size_before = len(encoder)
        parallel_stage(store, encoder, 4, workers=3)
        # Complete pre-seeding makes the merge a no-op.
        assert len(encoder) == size_before


class TestEncoderMerge:
    def test_merge_appends_unknown_pairs_in_code_order(self):
        ours = EdgeLabelEncoder()
        ours.encode("a", "b")
        theirs = EdgeLabelEncoder.from_dict(ours.to_dict())
        theirs.encode("a", "c")
        theirs.encode("b", "d")
        added = ours.merge(theirs)
        assert added == 2
        assert ours.to_dict() == theirs.to_dict()

    def test_merge_rejects_conflicting_codes(self):
        ours = EdgeLabelEncoder()
        ours.encode("a", "b")  # code 1
        theirs = EdgeLabelEncoder()
        theirs.encode("a", "c")  # code 1 for a different pair
        theirs.encode("a", "b")  # code 2 — conflicts with ours
        with pytest.raises(FeatureError):
            ours.merge(theirs)

    def test_merge_rejects_code_gaps(self):
        ours = EdgeLabelEncoder()
        theirs = EdgeLabelEncoder()
        theirs.encode("a", "b")  # code 1
        theirs.encode("a", "c")  # code 2
        # Drop the first pair: the second now has an unjoinable code.
        gapped = {
            pair: code
            for pair, code in theirs.to_dict().items()
            if code != 1
        }
        with pytest.raises(FeatureError):
            ours.merge(EdgeLabelEncoder.from_dict(gapped))

    def test_snapshot_is_independent(self):
        encoder = EdgeLabelEncoder()
        encoder.encode("a", "b")
        snapshot = encoder.snapshot()
        snapshot.encode("a", "c")
        assert len(encoder) == 1
        assert len(snapshot) == 2

"""Tests for incremental index maintenance (add / remove documents)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RecordError, StorageError
from repro.core import FixIndex, FixIndexConfig, FixQueryProcessor, evaluate_pruning
from repro.query import query_matches_document, twig_of
from repro.storage import PrimaryXMLStore
from repro.xmltree import Document, Element, parse_xml

DOCS = [
    "<bib><article><author><email/></author><title/></article></bib>",
    "<bib><book><author><phone/></author><title/></book></bib>",
    "<bib><www><title/></www></bib>",
]


def fresh_index(depth_limit: int = 0) -> FixIndex:
    store = PrimaryXMLStore()
    for source in DOCS:
        store.add_document(parse_xml(source))
    return FixIndex.build(store, FixIndexConfig(depth_limit=depth_limit))


def rebuild_equivalent(index: FixIndex) -> FixIndex:
    """Rebuild from scratch over the index's current live documents."""
    store = PrimaryXMLStore()
    for doc_id in index.store.doc_ids():
        source_doc = index.store.get_document(doc_id)
        store.add_document(parse_xml_of(source_doc))
    return FixIndex.build(store, index.config)


def parse_xml_of(document: Document) -> Document:
    from repro.xmltree import serialize_fragment

    return parse_xml(serialize_fragment(document.root))


class TestAddDocument:
    def test_new_document_becomes_queryable(self):
        index = fresh_index()
        new_doc = parse_xml(
            "<bib><inproceedings><author><affiliation/></author></inproceedings></bib>"
        )
        doc_id = index.add_document(new_doc)
        processor = FixQueryProcessor(index)
        result = processor.query("//inproceedings/author/affiliation")
        assert {p.doc_id for p in result.results} == {doc_id}

    def test_entry_count_grows(self):
        index = fresh_index()
        before = index.entry_count
        index.add_document(parse_xml("<bib><misc/></bib>"))
        assert index.entry_count == before + 1  # collection: 1 entry/doc

    def test_subpattern_mode_adds_one_entry_per_element(self):
        index = fresh_index(depth_limit=3)
        before = index.entry_count
        new_doc = parse_xml("<bib><article><title/></article></bib>")
        index.add_document(new_doc)
        assert index.entry_count == before + new_doc.element_count()

    def test_existing_results_unchanged(self):
        index = fresh_index()
        processor = FixQueryProcessor(index)
        before = {p.doc_id for p in processor.query("//author").results}
        index.add_document(parse_xml("<bib><unrelated/></bib>"))
        after = {p.doc_id for p in processor.query("//author").results}
        assert before == after

    def test_clustered_rejects_mutation(self):
        store = PrimaryXMLStore()
        store.add_document(parse_xml(DOCS[0]))
        index = FixIndex.build(store, FixIndexConfig(depth_limit=0, clustered=True))
        with pytest.raises(StorageError):
            index.add_document(parse_xml(DOCS[1]))
        with pytest.raises(StorageError):
            index.remove_document(0)


class TestRemoveDocument:
    def test_removed_document_stops_matching(self):
        index = fresh_index()
        processor = FixQueryProcessor(index)
        assert {p.doc_id for p in processor.query("//book").results} == {1}
        removed = index.remove_document(1)
        assert removed == 1
        assert processor.query("//book").results == []

    def test_entry_count_shrinks(self):
        index = fresh_index(depth_limit=3)
        document = index.store.get_document(0)
        before = index.entry_count
        removed = index.remove_document(0)
        assert removed == document.element_count()
        assert index.entry_count == before - removed

    def test_report_btree_bytes_refreshed(self):
        # The report must track the B-tree it describes after removals,
        # exactly as add_document refreshes it.
        index = fresh_index(depth_limit=3)
        before = index.report.btree_bytes
        assert before == index.btree.size_bytes()
        removed = index.remove_document(0)
        assert removed > 0
        assert index.report.btree_bytes == index.btree.size_bytes()
        assert index.report.btree_bytes <= before

    def test_store_tombstone(self):
        index = fresh_index()
        index.remove_document(2)
        assert index.store.document_count == 2
        assert list(index.store.doc_ids()) == [0, 1]
        with pytest.raises(RecordError):
            index.store.get_document(2)

    def test_double_remove_raises(self):
        index = fresh_index()
        index.remove_document(0)
        with pytest.raises(RecordError):
            index.remove_document(0)

    def test_metrics_after_removal(self):
        index = fresh_index()
        index.remove_document(0)
        metrics = evaluate_pruning(index, "//book[title]")
        assert metrics.ent == index.entry_count == 2
        assert metrics.false_negatives == 0


class TestAddRemoveChurn:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=12))
    def test_churn_preserves_query_correctness(self, operations):
        """Random interleavings of add/remove must keep query results
        equal to brute-force over the live documents."""
        index = fresh_index(depth_limit=3)
        live = {0, 1, 2}
        next_shape = 0
        shapes = [
            "<bib><article><x{}/></article></bib>",
            "<bib><book><y{}/></book></bib>",
        ]
        for op in operations:
            if op <= 1 or not live:
                shape = shapes[op % 2].format(next_shape % 3)
                next_shape += 1
                live.add(index.add_document(parse_xml(shape)))
            else:
                victim = sorted(live)[op % len(live)]
                index.remove_document(victim)
                live.discard(victim)
        processor = FixQueryProcessor(index)
        for query in ("//article", "//book", "//author", "//title"):
            twig = twig_of(query)
            expected = {
                doc_id
                for doc_id in index.store.doc_ids()
                if query_matches_document(twig, index.store.get_document(doc_id))
            }
            got = {p.doc_id for p in processor.query(twig).results}
            assert got == expected, query
        index.btree.check_invariants()

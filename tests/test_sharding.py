"""Sharded-index tests: scatter-gather answers must be pointer-identical
to the single-index answers for every shard count x worker count x
affinity, incremental maintenance and persistence included; damage in
one shard must surface as a typed :class:`ShardError` naming it.

The parallel-build contract is stricter than answer identity: for any
``shard_workers`` the staged entries AND the saved on-disk bytes must be
identical to the serial build, and refinement push-down must return the
same pointers as scatter-gather on both prune backends."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import (
    FixIndex,
    FixIndexConfig,
    FixQueryProcessor,
    ShardedFixIndex,
)
from repro.errors import PageError, ShardError, StorageError
from repro.storage import PrimaryXMLStore
from repro.xmltree import parse_xml

_ROOTS = ["book", "article", "journal", "report"]

_QUERIES = [
    "/book/sec/p",
    "/article//year",
    "//sec/title",
    "//meta",
    "//sec[title]/p",
    "//nosuchlabel",
]


def _source(kind: int, sections: int, tag: int) -> str:
    root = _ROOTS[kind % len(_ROOTS)]
    body = "".join(
        f"<sec><title>t{tag}</title><p>x{i}</p></sec>"
        for i in range(sections)
    )
    return f"<{root}><meta><year>19{tag % 90 + 10}</year></meta>{body}</{root}>"


def _corpus(count: int = 36) -> list[str]:
    return [_source(i, i % 4 + 1, i * 7) for i in range(count)]


def _store(sources: list[str]) -> PrimaryXMLStore:
    store = PrimaryXMLStore()
    for source in sources:
        store.add_source(source)
    return store


def _answers(index, workers: int = 1) -> dict[str, list]:
    processor = FixQueryProcessor(index, workers=workers)
    return {query: processor.query(query).results for query in _QUERIES}


@pytest.fixture(scope="module")
def single_answers():
    index = FixIndex.build(_store(_corpus()), FixIndexConfig(depth_limit=0))
    return _answers(index)


class TestPointerIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_grid(self, shards, workers, single_answers):
        config = FixIndexConfig(depth_limit=0, shards=shards)
        sharded = ShardedFixIndex.build(_store(_corpus()), config)
        assert _answers(sharded, workers=workers) == single_answers

    @pytest.mark.parametrize("shards", [2, 5])
    def test_root_label_affinity(self, shards, single_answers):
        config = FixIndexConfig(
            depth_limit=0, shards=shards, shard_affinity="root-label"
        )
        sharded = ShardedFixIndex.build(_store(_corpus()), config)
        assert _answers(sharded) == single_answers

    @pytest.mark.parametrize("backend", ["rtree"])
    def test_rtree_backend(self, backend, single_answers):
        sharded = ShardedFixIndex.build(
            _store(_corpus()), FixIndexConfig(depth_limit=0, shards=3)
        )
        processor = FixQueryProcessor(sharded, prune_backend=backend)
        got = {q: processor.query(q).results for q in _QUERIES}
        assert got == single_answers

    def test_depth_limited_mode(self):
        sources = _corpus(20)
        config = FixIndexConfig(depth_limit=3)
        single = FixIndex.build(_store(sources), config)
        sharded = ShardedFixIndex.build(
            _store(sources),
            FixIndexConfig(depth_limit=3, shards=4),
        )
        for query in ["/sec/title", "//sec/p", "/meta/year"]:
            expected = FixQueryProcessor(single).query(query).results
            got = FixQueryProcessor(sharded).query(query).results
            assert got == expected

    @settings(max_examples=15, deadline=None)
    @given(
        kinds=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=1, max_value=3),
                st.integers(min_value=0, max_value=9),
            ),
            min_size=1,
            max_size=12,
        ),
        shards=st.integers(min_value=1, max_value=6),
        workers=st.sampled_from([1, 3]),
        shard_workers=st.sampled_from([1, 3]),
        affinity=st.sampled_from(["hash", "root-label"]),
    )
    def test_property(self, kinds, shards, workers, shard_workers, affinity):
        sources = [_source(*kind) for kind in kinds]
        single = FixIndex.build(
            _store(sources), FixIndexConfig(depth_limit=0)
        )
        sharded = ShardedFixIndex.build(
            _store(sources),
            FixIndexConfig(
                depth_limit=0,
                shards=shards,
                shard_affinity=affinity,
                shard_workers=shard_workers,
            ),
        )
        assert _answers(sharded, workers=workers) == _answers(single)


class TestParallelBuild:
    @pytest.mark.parametrize("shard_workers", [2, 4])
    def test_worker_grid_matches_single(self, shard_workers, single_answers):
        config = FixIndexConfig(
            depth_limit=0, shards=4, shard_workers=shard_workers
        )
        sharded = ShardedFixIndex.build(_store(_corpus()), config)
        assert _answers(sharded) == single_answers

    def test_entries_identical_to_serial(self):
        sources = _corpus(20)
        builds = [
            ShardedFixIndex.build_from_sources(
                sources,
                FixIndexConfig(depth_limit=0, shards=3, shard_workers=w),
            )
            for w in (1, 3)
        ]
        serial, parallel = builds
        for a, b in zip(serial.shards, parallel.shards):
            assert [(e.key, e.pointer) for e in a.iter_entries()] == [
                (e.key, e.pointer) for e in b.iter_entries()
            ]

    def test_on_disk_bytes_identical_to_serial(self, tmp_path):
        sources = _corpus(20)
        saved = {}
        for workers in (1, 4):
            config = FixIndexConfig(
                depth_limit=0,
                shards=3,
                shard_affinity="root-label",
                shard_workers=workers,
                spill_dir=os.fspath(tmp_path / f"spill-{workers}"),
            )
            sharded = ShardedFixIndex.build_from_sources(sources, config)
            out = os.fspath(tmp_path / f"out-{workers}")
            sharded.save(out)
            pages = {}
            for dirpath, _, names in os.walk(out):
                for name in names:
                    if name.endswith(".pages"):
                        path = os.path.join(dirpath, name)
                        with open(path, "rb") as handle:
                            pages[os.path.relpath(path, out)] = handle.read()
            saved[workers] = pages
        assert sorted(saved[1]) == sorted(saved[4])
        assert saved[1] == saved[4]

    def test_value_extended_parallel_build(self):
        sources = _corpus(16)
        builds = [
            ShardedFixIndex.build_from_sources(
                sources,
                FixIndexConfig(
                    depth_limit=0,
                    shards=3,
                    value_buckets=8,
                    shard_workers=w,
                ),
            )
            for w in (1, 2)
        ]
        assert _answers(builds[0]) == _answers(builds[1])

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            FixIndexConfig(shard_workers=0)

    def test_worker_failure_names_shard(self, tmp_path, monkeypatch):
        # Damage one spilled shard store after routing but before the
        # build fan-out: the worker's reattach must fail, and the
        # coordinator must surface a ShardError naming that shard
        # instead of a raw pool traceback.
        victim_holder = []
        original = ShardedFixIndex._build_all

        def sabotage(self):
            victim = next(
                shard_id
                for shard_id, shard in enumerate(self.shards)
                if shard.store.document_count
            )
            victim_holder.append(victim)
            pager = self.shards[victim].store.pager
            pager.flush()
            with open(pager.path, "ab") as handle:
                handle.write(b"\x00" * 7)  # no longer whole pages
            original(self)

        monkeypatch.setattr(ShardedFixIndex, "_build_all", sabotage)
        config = FixIndexConfig(
            depth_limit=0,
            shards=3,
            shard_workers=2,
            spill_dir=os.fspath(tmp_path / "spill"),
        )
        with pytest.raises(ShardError) as excinfo:
            ShardedFixIndex.build_from_sources(_corpus(12), config)
        assert excinfo.value.shard == victim_holder[0]
        assert f"shard {victim_holder[0]}" in str(excinfo.value)
        assert "build failed" in str(excinfo.value)


class TestPushdown:
    @pytest.mark.parametrize("backend", ["btree", "rtree"])
    def test_matches_single(self, backend, single_answers):
        config = FixIndexConfig(
            depth_limit=0,
            shards=4,
            shard_affinity="root-label",
            shard_workers=2,
        )
        sharded = ShardedFixIndex.build(_store(_corpus()), config)
        processor = FixQueryProcessor(
            sharded, pushdown=True, prune_backend=backend
        )
        got = {}
        for query in _QUERIES:
            result = processor.query(query)
            got[query] = result.results
            assert result.pushdown
        assert got == single_answers

    def test_structural_join_refiner(self, single_answers):
        from repro.engine.structural_join import StructuralJoinEngine

        sharded = ShardedFixIndex.build(
            _store(_corpus()), FixIndexConfig(depth_limit=0, shards=3)
        )
        processor = FixQueryProcessor(
            sharded, StructuralJoinEngine(sharded.store), pushdown=True
        )
        got = {q: processor.query(q).results for q in _QUERIES}
        assert got == single_answers

    def test_plain_index_ignores_pushdown(self, single_answers):
        index = FixIndex.build(
            _store(_corpus()), FixIndexConfig(depth_limit=0)
        )
        processor = FixQueryProcessor(index, pushdown=True)
        result = processor.query("//sec/title")
        assert not result.pushdown
        assert result.results == single_answers["//sec/title"]

    def test_skips_shards_and_counts(self):
        config = FixIndexConfig(
            depth_limit=0, shards=4, shard_affinity="root-label"
        )
        sharded = ShardedFixIndex.build(_store(_corpus()), config)
        FixQueryProcessor(sharded, pushdown=True).query("/book/sec/p")
        counters = sharded.obs.registry.snapshot()["counters"]
        assert counters.get("shards.skipped", 0) > 0
        assert counters.get("shards.visited", 0) >= 1


class TestScatterOrdering:
    def test_concurrent_scatter_matches_serial(self, single_answers):
        builds = [
            ShardedFixIndex.build(
                _store(_corpus()),
                FixIndexConfig(depth_limit=0, shards=4, shard_workers=w),
            )
            for w in (1, 4)
        ]
        serial, concurrent = builds
        assert _answers(concurrent) == single_answers
        counters = concurrent.obs.registry.snapshot()["counters"]
        assert counters.get("shards.visited", 0) > 0


    def test_anchored_query_skips_unrelated_shards(self):
        config = FixIndexConfig(
            depth_limit=0, shards=4, shard_affinity="root-label"
        )
        sharded = ShardedFixIndex.build(_store(_corpus()), config)
        FixQueryProcessor(sharded).query("/book/sec/p")
        counters = sharded.obs.registry.snapshot()["counters"]
        assert counters.get("shards.skipped", 0) > 0
        assert counters.get("shards.visited", 0) >= 1

    def test_skipping_never_loses_answers(self, single_answers):
        config = FixIndexConfig(
            depth_limit=0, shards=8, shard_affinity="root-label"
        )
        sharded = ShardedFixIndex.build(_store(_corpus()), config)
        assert _answers(sharded) == single_answers


class TestIncrementalParity:
    def test_add_and_remove_match_single(self):
        sources = _corpus(24)
        extra = [_source(1, 2, 99), _source(3, 1, 77)]
        single = FixIndex.build(
            _store(sources), FixIndexConfig(depth_limit=0)
        )
        sharded = ShardedFixIndex.build(
            _store(sources), FixIndexConfig(depth_limit=0, shards=3)
        )
        for source in extra:
            assert sharded.add_document(parse_xml(source)) == (
                single.add_document(parse_xml(source))
            )
        assert single.remove_document(5) == sharded.remove_document(5)
        assert _answers(sharded, workers=2) == _answers(single)
        with pytest.raises(Exception):
            sharded.shard_of(5)  # removed -> unroutable

    def test_rebuild_equals_incremental(self):
        sources = _corpus(18)
        incremental = ShardedFixIndex.build_from_sources(
            sources[:12], FixIndexConfig(depth_limit=0, shards=4)
        )
        for source in sources[12:]:
            incremental.add_document(parse_xml(source))
        rebuilt = ShardedFixIndex.build_from_sources(
            sources, FixIndexConfig(depth_limit=0, shards=4)
        )
        assert _answers(incremental) == _answers(rebuilt)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, single_answers):
        sharded = ShardedFixIndex.build(
            _store(_corpus()), FixIndexConfig(depth_limit=0, shards=4)
        )
        directory = os.fspath(tmp_path / "idx")
        sharded.save(directory)
        loaded = ShardedFixIndex.load(directory)
        assert loaded.shard_count == 4
        assert _answers(loaded, workers=4) == single_answers
        loaded.add_document(parse_xml(_source(0, 2, 5)))

    def test_spill_build_under_tight_pool(self, tmp_path):
        # Documents large enough that each shard's store outgrows the
        # 4-page buffer pool, forcing real evictions during the build.
        sources = [_source(i, 120, i) for i in range(24)]
        single = FixIndex.build(
            _store(sources), FixIndexConfig(depth_limit=0)
        )
        config = FixIndexConfig(
            depth_limit=0,
            shards=4,
            spill_dir=os.fspath(tmp_path / "spill"),
            page_cache_pages=4,
            btree_node_cache=4,
        )
        sharded = ShardedFixIndex.build(_store(sources), config)
        assert _answers(sharded) == _answers(single)
        assert sharded.pager_stats().evictions > 0

    def test_shard_workers_roundtrip_and_override(self, tmp_path):
        sharded = ShardedFixIndex.build(
            _store(_corpus(12)),
            FixIndexConfig(depth_limit=0, shards=2, shard_workers=3),
        )
        directory = os.fspath(tmp_path / "idx")
        sharded.save(directory)
        assert ShardedFixIndex.load(directory).config.shard_workers == 3
        override = ShardedFixIndex.load(directory, shard_workers=1)
        assert override.config.shard_workers == 1

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(StorageError):
            ShardedFixIndex.load(os.fspath(tmp_path / "nothing"))

    def test_clustered_is_rejected(self):
        with pytest.raises(ValueError):
            FixIndexConfig(depth_limit=0, shards=2, clustered=True)


class TestShardDamage:
    def test_corrupted_shard_page_names_the_shard(self, tmp_path):
        sharded = ShardedFixIndex.build(
            _store(_corpus()), FixIndexConfig(depth_limit=0, shards=4)
        )
        directory = os.fspath(tmp_path / "idx")
        sharded.save(directory)
        victim = sharded.shard_of(0)
        pages = os.path.join(directory, f"shard-{victim}", "btree.pages")
        size = os.path.getsize(pages)
        with open(pages, "wb") as handle:  # every page becomes garbage
            handle.write(b"\xff" * size)
        loaded = ShardedFixIndex.load(directory)
        with pytest.raises(ShardError) as excinfo:
            FixQueryProcessor(loaded).query("//meta")
        assert excinfo.value.shard == victim
        assert f"shard {victim}" in str(excinfo.value)
        assert isinstance(excinfo.value, PageError)  # typed page damage

    def test_missing_shard_directory_fails_load(self, tmp_path):
        sharded = ShardedFixIndex.build(
            _store(_corpus(8)), FixIndexConfig(depth_limit=0, shards=2)
        )
        directory = os.fspath(tmp_path / "idx")
        sharded.save(directory)
        import shutil

        shutil.rmtree(os.path.join(directory, "shard-1"))
        with pytest.raises(ShardError) as excinfo:
            ShardedFixIndex.load(directory)
        assert excinfo.value.shard == 1


class TestShardedCLI:
    def test_build_query_stats(self, tmp_path, capsys):
        directory = os.fspath(tmp_path / "idx")
        xml = os.fspath(tmp_path / "doc%d.xml")
        files = []
        for i, source in enumerate(_corpus(10)):
            path = xml % i
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(source)
            files.append(path)
        assert main(
            ["build", "--xml", *files, "--out", directory,
             "--shards", "3", "--shard-workers", "2",
             "--page-cache-pages", "64"]
        ) == 0
        assert main(["query", directory, "//sec/title", "--workers", "2"]) == 0
        assert main(
            ["query", directory, "//sec/title", "--pushdown",
             "--shard-workers", "2"]
        ) == 0
        assert main(["stats", directory]) == 0
        output = capsys.readouterr().out
        assert "shards:         3" in output
        assert "pushdown" in output
        assert "balance:" in output
        assert "buffer pool" in output
        assert main(["verify", directory, "--fast"]) == 0

    def test_stats_warns_on_empty_shards(self, tmp_path, capsys):
        directory = os.fspath(tmp_path / "idx")
        path = os.fspath(tmp_path / "doc.xml")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(_source(0, 2, 1))  # one root label only
        assert main(
            ["build", "--xml", path, "--out", directory,
             "--shards", "3", "--shard-affinity", "root-label"]
        ) == 0
        assert main(["stats", directory]) == 0
        output = capsys.readouterr().out
        assert "hold no entries" in output
        assert "root-label affinity" in output


class TestShardBalance:
    def test_balanced(self):
        from repro.core.stats import shard_balance

        sharded = ShardedFixIndex.build(
            _store(_corpus()), FixIndexConfig(depth_limit=0, shards=4)
        )
        balance = shard_balance(sharded)
        assert sum(balance["documents"]) == 36
        assert sum(balance["entries"]) == sharded.entry_count
        assert balance["empty_shards"] == []
        assert balance["skew"] >= 1.0

    def test_empty_shards_give_infinite_skew(self):
        import math

        from repro.core.stats import shard_balance

        # One distinct root label cannot populate 4 root-label shards.
        sources = [_source(0, 2, i) for i in range(8)]
        sharded = ShardedFixIndex.build_from_sources(
            sources,
            FixIndexConfig(
                depth_limit=0, shards=4, shard_affinity="root-label"
            ),
        )
        balance = shard_balance(sharded)
        assert len(balance["empty_shards"]) == 3
        assert math.isinf(balance["skew"])
        gauges = sharded.obs.registry.snapshot()["gauges"]
        assert gauges.get("shards.empty") == 3

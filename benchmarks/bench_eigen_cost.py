"""Section 3.3's computational-cost claim: eigenvalue extraction is
"sub-millisecond for a dense 10x10 matrix and sub-second for a dense
300x300 matrix" (on the paper's 2006 Pentium 4).  This module times the
same operation — the Hermitian eigendecomposition of a dense anti-
symmetric matrix — at the paper's two sizes plus intermediate ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.spectral import eigenvalue_range


def _dense_antisymmetric(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.integers(1, 40, size=(n, n)).astype(np.float64), k=1)
    return upper - upper.T


@pytest.mark.parametrize("size", [10, 50, 100, 300])
def test_eigen_cost(benchmark, size):
    """Dense eigendecomposition at the paper's reference sizes."""
    matrix = _dense_antisymmetric(size)
    lmin, lmax = benchmark(lambda: eigenvalue_range(matrix))
    assert lmax > 0 > lmin

    # The paper's envelope, generously: sub-ms at 10x10 and sub-second
    # at 300x300.  Modern LAPACK clears both by wide margins; assert the
    # 300x300 bound only (the 10x10 median is checked after the fact in
    # EXPERIMENTS.md to avoid flaky sub-ms assertions under load).
    if size == 300:
        assert benchmark.stats.stats.median < 1.0


def test_eigen_cost_scales_cubically(benchmark):
    """Sanity on the O(n^3) claim: one combined measurement pass."""

    def measure() -> dict[int, float]:
        import time

        timings: dict[int, float] = {}
        for size in (50, 100, 200):
            matrix = _dense_antisymmetric(size)
            started = time.perf_counter()
            for _ in range(3):
                eigenvalue_range(matrix)
            timings[size] = (time.perf_counter() - started) / 3
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Doubling n should cost clearly more (allow wide slack: BLAS
    # threading and small-matrix overheads flatten the low end).
    assert timings[200] > timings[50]

"""Build-pipeline benchmark: serial vs parallel vs cached construction.

Times `FixIndex.build` over a repetitive multi-document corpus under
four configurations:

* ``serial``           — one process, feature cache off (the seed's
  behaviour: every pattern pays its own ``eigvalsh``);
* ``serial+cache``     — one process, cross-document feature cache on;
* ``parallel``         — document fan-out across worker processes,
  cache off;
* ``parallel+cache``   — fan-out with a worker-local cache each.

All four must produce **byte-identical** B-tree contents (checked here
via a digest over ``btree.items()``); the acceptance bar is a >= 2x
speedup of ``parallel+cache`` over the uncached serial baseline.  On a
single-core host that speedup comes entirely from the cache eliminating
repeated unfold + eigen work (worker-local caches still dedupe within
each worker's chunk); on a multi-core host the fan-out stacks on top.

The corpus is the limiting case of DBLP-style regularity: structurally
identical documents, each a forest of deep, narrow chains, so the same
large patterns (expensive ``eigvalsh``) recur in every document and the
eigen phase dominates — the regime the FIX paper's Table 1 identifies
as the construction bottleneck.

Standalone runner (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_build_pipeline.py [--quick]

writes ``BENCH_build.json`` at the repository root with the raw
timings, per-phase breakdowns, cache statistics, and speedups.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from hashlib import blake2b

from repro.core import FixIndex, FixIndexConfig
from repro.storage import PrimaryXMLStore
from repro.xmltree import Document, Element

TARGET_SPEEDUP = 2.0
LABELS = ("para", "note", "item", "entry", "ref", "cite")


def _chain(rng: random.Random, depth: int) -> Element:
    element = Element(rng.choice(LABELS))
    if depth > 1:
        for _ in range(2 if rng.random() < 0.22 else 1):
            element.append(_chain(rng, depth - 1))
    else:
        element.add_element("text")
    return element


def make_document(seed: int, chains: int, depth: int) -> Document:
    """One deep, narrow document: ``chains`` mostly-linear nests."""
    rng = random.Random(seed)
    root = Element("book")
    for _ in range(chains):
        root.append(_chain(rng, depth))
    return Document(root)


def build_corpus(documents: int, chains: int, depth: int, seed: int) -> PrimaryXMLStore:
    """``documents`` structurally identical copies of one deep document.

    Identical structure across documents is the cache's best case and
    the uncached build's worst (every document re-pays every
    decomposition) — the regime the cross-document cache targets.
    """
    store = PrimaryXMLStore()
    for _ in range(documents):
        store.add_document(make_document(seed, chains, depth))
    return store


def btree_digest(index: FixIndex) -> str:
    """Content digest of the B-tree: every (key, value) byte in order."""
    digest = blake2b(digest_size=16)
    for key, value in index.btree.items():
        digest.update(len(key).to_bytes(4, "big"))
        digest.update(key)
        digest.update(len(value).to_bytes(4, "big"))
        digest.update(value)
    return digest.hexdigest()


def run_config(
    store: PrimaryXMLStore,
    label: str,
    workers: int,
    cache: bool,
    depth_limit: int,
) -> dict:
    """Build once under one configuration and collect its numbers."""
    config = FixIndexConfig(
        depth_limit=depth_limit, workers=workers, feature_cache=cache
    )
    started = time.perf_counter()
    index = FixIndex.build(store, config)
    seconds = time.perf_counter() - started
    stats = index.report.stats
    return {
        "label": label,
        "workers": workers,
        "feature_cache": cache,
        "seconds": seconds,
        "phases": index.report.timings.as_dict(),
        "entries": index.entry_count,
        "eigen_computations": stats.eigen_computations,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "largest_pattern": stats.largest_pattern,
        "btree_digest": btree_digest(index),
    }


def run_benchmark(
    documents: int, chains: int, depth: int, seed: int, workers: int
) -> dict:
    store = build_corpus(documents, chains, depth, seed)
    doc_ids = list(store.doc_ids())
    elements = sum(
        store.get_document(doc_id).element_count() for doc_id in doc_ids
    )
    print(f"corpus: {len(doc_ids)} identical documents, {elements} elements")

    runs = []
    for label, n_workers, cache in (
        ("serial", 1, False),
        ("serial+cache", 1, True),
        ("parallel", workers, False),
        ("parallel+cache", workers, True),
    ):
        run = run_config(store, label, n_workers, cache, depth_limit=depth)
        runs.append(run)
        hits = f", {run['cache_hits']} cache hits" if cache else ""
        print(
            f"{label:15s} {run['seconds']:7.2f}s  "
            f"({run['eigen_computations']} eigvalsh{hits})"
        )

    digests = {run["btree_digest"] for run in runs}
    baseline = runs[0]["seconds"]
    for run in runs:
        run["speedup"] = baseline / run["seconds"] if run["seconds"] else 0.0
    return {
        "corpus": {
            "documents": documents,
            "chains_per_document": chains,
            "depth": depth,
            "seed": seed,
            "elements": elements,
            "depth_limit": depth,
        },
        "workers": workers,
        "runs": runs,
        "byte_identical": len(digests) == 1,
        "target_speedup": TARGET_SPEEDUP,
        "best_speedup": max(run["speedup"] for run in runs),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny corpus smoke run (CI); skips the speedup assertion "
        "and does not write BENCH_build.json unless --out is given",
    )
    parser.add_argument("--documents", type=int, default=None)
    parser.add_argument("--chains", type=int, default=None,
                        help="chains per document")
    parser.add_argument("--depth", type=int, default=None,
                        help="document depth (also used as the depth limit)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--workers", type=int, default=4, help="fan-out width for the parallel runs"
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="output JSON path (default: BENCH_build.json at the repo "
        "root; quick runs print only unless --out is set)",
    )
    args = parser.parse_args(argv)

    documents = args.documents or (4 if args.quick else 12)
    chains = args.chains or (2 if args.quick else 3)
    depth = args.depth or (10 if args.quick else 26)
    report = run_benchmark(documents, chains, depth, args.seed, args.workers)

    if not report["byte_identical"]:
        print("FAIL: B-tree contents differ between configurations")
        return 1
    print("B-tree contents byte-identical across all configurations")

    cached = next(r for r in report["runs"] if r["label"] == "parallel+cache")
    print(
        f"parallel+cache speedup over serial: {cached['speedup']:.2f}x "
        f"(target {TARGET_SPEEDUP:.0f}x)"
    )

    out = args.out
    if out is None and not args.quick:
        out = os.path.join(os.path.dirname(__file__), "..", "BENCH_build.json")
    if out is not None:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {os.path.abspath(out)}")

    if not args.quick and cached["speedup"] < TARGET_SPEEDUP:
        print(f"FAIL: speedup below the {TARGET_SPEEDUP:.0f}x target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 6: runtime comparison — NoK navigation without index support,
unclustered FIX, the F&B covering index, and clustered FIX — on the
XMark-, Treebank-, and DBLP-like data sets.

Per-system micro-benchmarks time each query on each engine; the report
test regenerates the full figure (both wall-clock and the cost-model
page counts) and checks the cross-system claims that survive the move
from the paper's disk-resident C++ prototype to a memory-resident Python
simulator (see EXPERIMENTS.md for the full discussion).
"""

from __future__ import annotations

import pytest

from repro.bench.figure6 import print_figure6, run_figure6
from repro.bench.paper_queries import FIGURE6_QUERIES
from repro.engine import NavigationalEngine
from repro.query import twig_of
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED

_IDS = [f"{d}_{q}" for d, q, _ in FIGURE6_QUERIES]


@pytest.mark.parametrize("dataset, query_id, query", FIGURE6_QUERIES, ids=_IDS)
def test_fix_unclustered(benchmark, dataset, query_id, query, processors):
    """Two-phase FIX evaluation (prune + navigational refinement)."""
    processor = processors[dataset]
    twig = twig_of(query)
    result = benchmark(lambda: processor.query(twig))
    assert result.candidate_count >= result.result_count


@pytest.mark.parametrize("dataset, query_id, query", FIGURE6_QUERIES, ids=_IDS)
def test_nok_baseline(benchmark, dataset, query_id, query, stores):
    """No-index navigational evaluation over the whole store."""
    engine = NavigationalEngine(stores[dataset])
    twig = twig_of(query)
    benchmark(lambda: engine.evaluate(twig))


def test_figure6_report(benchmark):
    """Regenerate and print Figure 6; verify the portable claims."""
    rows = benchmark.pedantic(
        lambda: run_figure6(scale=BENCH_SCALE, seed=BENCH_SEED, repeats=3),
        rounds=1,
        iterations=1,
    )
    print()
    print_figure6(rows)
    assert len(rows) == len(FIGURE6_QUERIES)

    # All four systems agree on what the index must beat: candidates
    # bound results everywhere.
    assert all(row.candidate_count >= row.result_count for row in rows)

    # Cost-model claims (implementation-independent, the paper's I/O
    # story): clustered FIX reads fewer pages than unclustered chases
    # pointers whenever candidates are plentiful...
    heavy = [row for row in rows if row.candidate_count > 50]
    assert heavy, "expected at least one candidate-heavy query"
    for row in heavy:
        assert row.fix_c_pages_sequential < row.fix_u_pages_random, row.query_id
    # ...and on regular/shallow DBLP the F&B index is tiny — the paper's
    # own negative result for clustered FIX (its whole F&B index was
    # 180 KB): F&B touches fewer pages than the NoK full scan.
    dblp_rows = [row for row in rows if row.dataset == "dblp"]
    for row in dblp_rows:
        assert row.fb_pages_sequential < row.nok_pages_sequential

    # Wall-clock claim that does carry over: with index support, hi-
    # selectivity DBLP branching queries beat the full navigational scan
    # (the paper reports up to ~900% = 10x; shape, not magnitude).
    hi_bp = next(r for r in rows if r.dataset == "dblp" and r.query_id == "hi_bp")
    assert hi_bp.fix_unclustered_seconds < hi_bp.nok_seconds

"""Ablation: B-tree vs R-tree feature backend (the paper's Section 8
future work — "move the index to R-tree ... to gain further pruning
power" — implemented in :mod:`repro.spatial`).

Both backends return identical candidates (same predicate); what the
R-tree buys is fewer entries *inspected*, because it prunes on λ_min
while descending instead of post-filtering a λ_max suffix scan.
"""

from __future__ import annotations

import pytest

from repro.bench.paper_queries import TABLE2_QUERIES
from repro.bench.reporting import format_table
from repro.query import twig_of
from repro.spatial import SpatialFeatureIndex


@pytest.fixture(scope="module")
def spatial_indexes(unclustered_indexes):
    return {
        name: SpatialFeatureIndex(index)
        for name, index in unclustered_indexes.items()
        if name in ("xmark", "treebank", "dblp")
    }


_QUERIES = [(d, s, q) for d, s, q in TABLE2_QUERIES if d != "xbench"]


@pytest.mark.parametrize(
    "dataset, selectivity, query", _QUERIES, ids=[f"{d}_{s}" for d, s, _ in _QUERIES]
)
def test_rtree_backend(benchmark, dataset, selectivity, query, unclustered_indexes, spatial_indexes):
    """Time the R-tree candidate scan for one representative query."""
    index = unclustered_indexes[dataset]
    spatial = spatial_indexes[dataset]
    key = index.query_features(twig_of(query))
    candidates = benchmark(lambda: list(spatial.candidates_for_key(key)))
    # Identical answers to the B-tree backend.
    assert {e.pointer for e in candidates} == {
        e.pointer for e in index.candidates_for_key(key)
    }


def test_rtree_ablation_report(benchmark, unclustered_indexes, spatial_indexes):
    """Per-query work comparison: entries inspected by each backend."""

    def run():
        rows = []
        for dataset, selectivity, query in _QUERIES:
            index = unclustered_indexes[dataset]
            spatial = spatial_indexes[dataset]
            key = index.query_features(twig_of(query))
            # B-tree work: every entry in the lambda_max-suffix scan of
            # the label's range is decoded and filtered.
            btree_inspected = 0
            candidates = 0
            before = index.btree.stats.snapshot()
            for _ in index.candidates_for_key(key):
                candidates += 1
            leaf_scans = index.btree.stats.delta(before).leaf_scans
            btree_inspected = sum(
                1
                for e in index.iter_entries()
                if e.key.root_label == key.root_label
                and e.key.range.lmax >= key.range.lmax - index.config.guard_band
            )
            spatial.reset_stats()
            list(spatial.candidates_for_key(key))
            rows.append(
                (
                    f"{dataset}_{selectivity}",
                    candidates,
                    btree_inspected,
                    spatial.entries_inspected(),
                    leaf_scans,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["query", "cdt", "B-tree entries", "R-tree entries", "B-tree leaves"],
            rows,
            title="R-tree ablation: entries inspected per backend",
        )
    )
    for _, candidates, btree_inspected, rtree_inspected, _ in rows:
        # Both backends inspect at least the candidates they return; the
        # R-tree never inspects more than the B-tree's suffix scan plus
        # the unavoidable node-boundary slack.
        assert rtree_inspected >= 0
        assert btree_inspected >= candidates

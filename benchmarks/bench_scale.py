"""Out-of-core scale benchmark: sharded spill build vs in-memory build.

The claim under test (DESIGN.md §11): a sharded index with file-backed
stores, a bounded buffer pool, and bounded B-tree node tables can build
and query a corpus whose in-memory footprint the single monolithic
:class:`FixIndex` path cannot fit under a fixed process-memory budget —
while returning pointer-identical answers, and while root-label affinity
plus the per-shard λ_max histograms let anchored queries skip most
shards without touching them.

Each case runs in its own subprocess so ``resource.getrusage``'s
``ru_maxrss`` (the *lifetime* peak) measures that case alone:

* **single** — stream the corpus into an in-memory primary store,
  ``FixIndex.build``, then run the query workload.
* **sharded** — stream the same corpus straight into 8 file-backed
  shard stores (``spill_dir``), build each shard under a tight buffer
  pool and node table, then run the same workload.
* **sweep** — the sharded configuration at ``shard_workers`` 1/2/4/8
  (always on the quick corpus): per worker count it records the build
  time, saves the index and digests every ``.pages`` file, and runs the
  workload both scatter-gather and with refinement push-down.

The parent process compares per-query answer checksums (they must be
identical), records shard visit/skip counters, and asserts the memory
story: the sharded case must stay under the budget; the full-size
single case must exceed it.  For the sweep it asserts that answer
checksums (both query paths) match the single-index baseline and that
the saved bytes are identical for every worker count; the >= 2x build
speedup at 4 workers is asserted only when the host actually has >= 4
CPUs (the recorded ``cpus`` field says whether it was enforced).

Standalone runner (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_scale.py [--quick]

Full mode streams >= 3M elements and writes ``BENCH_scale.json`` at the
repository root.  ``--quick`` (~200k elements, the CI configuration)
asserts only the sharded ceiling and answer identity, and exits
non-zero on any breach.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import resource
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUT_PATH = os.path.join(ROOT, "BENCH_scale.json")

ROOTS = ["book", "article", "journal", "report"]
SECTION = "<sec><a/><b/><c/><p>%s</p></sec>"
PAYLOAD = "x" * 180  # text bulk: raises bytes/doc without adding elements
MIN_SECTIONS, MAX_SECTIONS = 28, 36

SHARDS = 8
PAGE_CACHE_PAGES = 64
BTREE_NODE_CACHE = 64
SWEEP_WORKERS = (1, 2, 4, 8)
SPEEDUP_FLOOR = 2.0  # build(w=1)/build(w=4), enforced on >= 4-CPU hosts

FULL_DOCS = 18_500  # >= 3M elements (see elements_for)
QUICK_DOCS = 1_250  # ~200k elements, the CI smoke configuration
FULL_BUDGET_MB = 160.0
QUICK_BUDGET_MB = 192.0

QUERIES = [
    "/book/sec/a",
    "/article/sec/b",
    "/journal/sec/c",
    "/report/sec/p",
    "/book//year",
    "//meta",
]


def sections_for(doc_id: int) -> int:
    return MIN_SECTIONS + doc_id % (MAX_SECTIONS - MIN_SECTIONS + 1)


def elements_for(doc_id: int) -> int:
    # root + meta + year + sections * (sec, a, b, c, p)
    return 3 + 5 * sections_for(doc_id)


def make_source(doc_id: int) -> str:
    root = ROOTS[doc_id % len(ROOTS)]
    body = SECTION % PAYLOAD * sections_for(doc_id)
    return f"<{root}><meta><year>19{doc_id % 90 + 10}</year></meta>{body}</{root}>"


def corpus(doc_count: int):
    return (make_source(doc_id) for doc_id in range(doc_count))


def total_elements(doc_count: int) -> int:
    return sum(elements_for(doc_id) for doc_id in range(doc_count))


def rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _checksum(pointers) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for pointer in pointers:
        digest.update(b"%d:%d;" % (pointer.doc_id, pointer.node_id))
    return digest.hexdigest()


def _pages_digest(root: str) -> str:
    """One digest over every saved ``.pages`` file (path + bytes): equal
    digests mean bit-identical on-disk shard trees and stores."""
    digest = hashlib.blake2b(digest_size=16)
    for dirpath, _, names in sorted(os.walk(root)):
        for name in sorted(names):
            if not name.endswith(".pages"):
                continue
            path = os.path.join(dirpath, name)
            digest.update(os.path.relpath(path, root).encode("utf-8"))
            with open(path, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()


# --------------------------------------------------------------------- #
# Child cases (each runs in a fresh subprocess)
# --------------------------------------------------------------------- #


def run_case(
    case: str, doc_count: int, workdir: str, shard_workers: int = 1
) -> dict:
    from repro.core import (
        FixIndex,
        FixIndexConfig,
        FixQueryProcessor,
        ShardedFixIndex,
    )
    from repro.storage import PrimaryXMLStore

    baseline_mb = rss_mb()  # interpreter + numpy, before any corpus data
    started = time.perf_counter()
    if case == "single":
        store = PrimaryXMLStore()
        for source in corpus(doc_count):
            store.add_source(source)
        index = FixIndex.build(store, FixIndexConfig(depth_limit=0))
    elif case == "sharded":
        config = FixIndexConfig(
            depth_limit=0,
            shards=SHARDS,
            shard_affinity="root-label",
            spill_dir=os.path.join(workdir, "spill"),
            page_cache_pages=PAGE_CACHE_PAGES,
            btree_node_cache=BTREE_NODE_CACHE,
        )
        index = ShardedFixIndex.build_from_sources(corpus(doc_count), config)
    elif case == "sweep":
        config = FixIndexConfig(
            depth_limit=0,
            shards=SHARDS,
            shard_affinity="root-label",
            shard_workers=shard_workers,
            spill_dir=os.path.join(workdir, f"spill-w{shard_workers}"),
            page_cache_pages=PAGE_CACHE_PAGES,
            btree_node_cache=BTREE_NODE_CACHE,
        )
        index = ShardedFixIndex.build_from_sources(corpus(doc_count), config)
    else:
        raise SystemExit(f"unknown case {case!r}")
    build_seconds = time.perf_counter() - started

    processor = FixQueryProcessor(index)
    answers = {}
    query_started = time.perf_counter()
    for query in QUERIES:
        result = processor.query(query)
        answers[query] = {
            "results": result.result_count,
            "checksum": _checksum(result.results),
        }
    query_seconds = time.perf_counter() - query_started

    report = {
        "case": case,
        "documents": doc_count,
        "entries": index.entry_count,
        "build_seconds": round(build_seconds, 3),
        "query_seconds": round(query_seconds, 3),
        "baseline_rss_mb": round(baseline_mb, 1),
        "peak_rss_mb": round(rss_mb(), 1),
        "answers": answers,
    }
    if case in ("sharded", "sweep"):
        counters = index.obs.registry.snapshot()["counters"]
        pager = index.pager_stats()
        report["shards"] = SHARDS
        report["shards_visited"] = counters.get("shards.visited", 0.0)
        report["shards_skipped"] = counters.get("shards.skipped", 0.0)
        report["pager"] = {
            "logical_reads": pager.logical_reads,
            "physical_reads": pager.physical_reads,
            "hit_rate": round(pager.hit_rate, 4),
            "evictions": pager.evictions,
        }
    if case == "sweep":
        report["shard_workers"] = shard_workers
        saved = os.path.join(workdir, f"saved-w{shard_workers}")
        index.save(saved)
        report["pages_digest"] = _pages_digest(saved)
        pushdown = FixQueryProcessor(index, pushdown=True)
        push_answers = {}
        push_started = time.perf_counter()
        for query in QUERIES:
            result = pushdown.query(query)
            push_answers[query] = {
                "results": result.result_count,
                "checksum": _checksum(result.results),
            }
        report["pushdown_query_seconds"] = round(
            time.perf_counter() - push_started, 3
        )
        report["pushdown_answers"] = push_answers
    return report


def _spawn(
    case: str, doc_count: int, workdir: str, shard_workers: int = 1
) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    completed = subprocess.run(
        [
            sys.executable, os.path.abspath(__file__),
            "--case", case, "--docs", str(doc_count), "--workdir", workdir,
            "--shard-workers", str(shard_workers),
        ],
        env=env,
        stdout=subprocess.PIPE,
        check=True,
    )
    return json.loads(completed.stdout.decode("utf-8"))


# --------------------------------------------------------------------- #
# Parent: orchestrate, compare, assert, record
# --------------------------------------------------------------------- #


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI configuration (~200k elements)")
    parser.add_argument("--case", choices=["single", "sharded", "sweep"],
                        help="internal: run one case and print JSON")
    parser.add_argument("--docs", type=int, default=None)
    parser.add_argument("--workdir", default=None)
    parser.add_argument("--shard-workers", type=int, default=1)
    parser.add_argument("--out", default=OUT_PATH)
    args = parser.parse_args(argv)

    if args.case:  # child invocation
        json.dump(
            run_case(args.case, args.docs, args.workdir, args.shard_workers),
            sys.stdout,
        )
        return 0

    doc_count = QUICK_DOCS if args.quick else FULL_DOCS
    budget_mb = QUICK_BUDGET_MB if args.quick else FULL_BUDGET_MB
    elements = total_elements(doc_count)
    print(f"corpus: {doc_count} documents, {elements} elements "
          f"({'quick' if args.quick else 'full'} mode, "
          f"budget {budget_mb:.0f} MB)")
    if not args.quick:
        assert elements >= 3_000_000, elements

    failures = []
    with tempfile.TemporaryDirectory(prefix="bench_scale_") as workdir:
        single = _spawn("single", doc_count, workdir)
        print(f"  single : build {single['build_seconds']}s "
              f"query {single['query_seconds']}s "
              f"peak {single['peak_rss_mb']} MB")
        sharded = _spawn("sharded", doc_count, workdir)
        print(f"  sharded: build {sharded['build_seconds']}s "
              f"query {sharded['query_seconds']}s "
              f"peak {sharded['peak_rss_mb']} MB "
              f"(visited {sharded['shards_visited']:.0f}, "
              f"skipped {sharded['shards_skipped']:.0f} shard scans)")

        # Shard-worker sweep: always on the quick corpus so the four
        # extra builds stay bounded.  In quick mode the single case just
        # measured is the baseline; in full mode spawn a quick one.
        sweep_docs = QUICK_DOCS
        if args.quick:
            sweep_baseline = single
        else:
            sweep_baseline = _spawn("single", sweep_docs, workdir)
        sweep = []
        for workers in SWEEP_WORKERS:
            run = _spawn("sweep", sweep_docs, workdir, shard_workers=workers)
            print(f"  sweep w={workers}: build {run['build_seconds']}s "
                  f"query {run['query_seconds']}s "
                  f"pushdown {run['pushdown_query_seconds']}s")
            sweep.append(run)

    cpus = os.cpu_count() or 1
    by_workers = {run["shard_workers"]: run for run in sweep}
    speedup = round(
        by_workers[1]["build_seconds"] / by_workers[4]["build_seconds"], 2
    )
    speedup_asserted = cpus >= 4
    print(f"  sweep: {speedup}x build speedup at 4 workers on {cpus} CPU(s)"
          f"{'' if speedup_asserted else ' (floor not enforced)'}")
    for run in sweep:
        workers = run["shard_workers"]
        if run["answers"] != sweep_baseline["answers"]:
            failures.append(
                f"sweep w={workers}: scatter-gather answers differ from "
                "the single-index baseline"
            )
        if run["pushdown_answers"] != sweep_baseline["answers"]:
            failures.append(
                f"sweep w={workers}: push-down answers differ from the "
                "single-index baseline"
            )
        if run["pages_digest"] != sweep[0]["pages_digest"]:
            failures.append(
                f"sweep w={workers}: saved bytes differ from the serial "
                "build"
            )
    if speedup_asserted and speedup < SPEEDUP_FLOOR:
        failures.append(
            f"build speedup {speedup}x at 4 shard workers is below the "
            f"{SPEEDUP_FLOOR}x floor on a {cpus}-CPU host"
        )

    if sharded["answers"] != single["answers"]:
        failures.append("sharded answers differ from single-index answers")
    if sharded["peak_rss_mb"] > budget_mb:
        failures.append(
            f"sharded peak RSS {sharded['peak_rss_mb']} MB exceeds the "
            f"{budget_mb:.0f} MB budget"
        )
    if not sharded["shards_skipped"]:
        failures.append("no shard scans were skipped (early exit inert)")
    if not args.quick and single["peak_rss_mb"] <= budget_mb:
        failures.append(
            f"single-index peak RSS {single['peak_rss_mb']} MB fits the "
            f"{budget_mb:.0f} MB budget — corpus too small to make the "
            "out-of-core case"
        )

    payload = {
        "mode": "quick" if args.quick else "full",
        "corpus": {
            "documents": doc_count,
            "elements": elements,
            "roots": ROOTS,
        },
        "budget_mb": budget_mb,
        "single": single,
        "sharded": sharded,
        "sweep": {
            "documents": sweep_docs,
            "cpus": cpus,
            "build_speedup_w4": speedup,
            "speedup_asserted": speedup_asserted,
            "identical_bytes": all(
                run["pages_digest"] == sweep[0]["pages_digest"]
                for run in sweep
            ),
            "runs": sweep,
        },
        "identical_answers": sharded["answers"] == single["answers"],
        "failures": failures,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Shared benchmark configuration.

``REPRO_BENCH_SCALE`` (default 0.4) controls data-set sizes for the whole
benchmark suite; 1.0 reproduces the numbers recorded in EXPERIMENTS.md.
Fixtures are session-scoped so data generation and index construction
are paid once per run, not per benchmark.
"""

from __future__ import annotations

import os

import pytest

from repro.core import FixIndex, FixIndexConfig, FixQueryProcessor
from repro.datasets import load_dataset

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bundles():
    """All four data sets at the benchmark scale."""
    return {
        name: load_dataset(name, scale=BENCH_SCALE, seed=BENCH_SEED)
        for name in ("xbench", "dblp", "xmark", "treebank")
    }


@pytest.fixture(scope="session")
def stores(bundles):
    return {name: bundle.store() for name, bundle in bundles.items()}


@pytest.fixture(scope="session")
def unclustered_indexes(bundles, stores):
    return {
        name: FixIndex.build(
            stores[name], FixIndexConfig(depth_limit=bundle.depth_limit)
        )
        for name, bundle in bundles.items()
    }


@pytest.fixture(scope="session")
def processors(unclustered_indexes):
    return {
        name: FixQueryProcessor(index)
        for name, index in unclustered_indexes.items()
    }

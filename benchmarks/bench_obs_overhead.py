"""Observability overhead benchmark: tracing enabled vs disabled.

The ``repro.obs`` layer promises that *disabled* observability is close
to free: the metrics registry replaces bookkeeping the pipelines already
did, and every disabled span site costs one attribute check plus the
cached :data:`repro.obs.NOOP_SPAN` singleton's no-op ``__enter__`` /
``__exit__``.  This benchmark measures that promise from three angles:

* **build** — time ``FixIndex.build`` over a repetitive corpus with
  tracing off and with tracing on, and report the enabled-mode
  overhead % (the price of *opting in*);
* **query** — run a 100-query batch against both indexes and report the
  same split, verifying the answers are pointer-identical;
* **no-op microbenchmark** — time the disabled ``tracer.span()`` call
  directly, then bound disabled-mode overhead as
  ``span sites x ns-per-site / build seconds``, which must stay under
  the 2 % budget (the number CI asserts);
* **sketch microbenchmark** — ns per ``QuantileSketch.observe`` (the
  always-on cost each query now pays four times) and per chunked
  ``merge``;
* **sketch accuracy** — the query batch's latencies recorded exactly
  alongside the ``query.seconds`` sketch, reporting the *measured* max
  rank error across p50/p90/p95/p99 and asserting it stays within the
  sketch's self-reported ``rank_error_bound()``;
* **ticker overhead** — the same query batch with the
  :class:`~repro.obs.resources.ResourceSampler` ticking at an
  aggressive 50 ms (100x the default rate), which must also stay
  within the budget.

Standalone runner (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--quick]
        [--out BENCH_obs.json]

writes ``BENCH_obs.json`` at the repository root with the raw timings
and the budget verdict.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

from repro.core import FixIndex, FixIndexConfig, FixQueryProcessor
from repro.obs import ObsConfig, QuantileSketch, ResourceSampler, Tracer

try:  # script-style sibling import; package-style under pytest
    from bench_build_pipeline import btree_digest, build_corpus
except ImportError:  # pragma: no cover
    from benchmarks.bench_build_pipeline import btree_digest, build_corpus

#: disabled-mode overhead must stay under this fraction of build time.
BUDGET_PCT = 2.0

QUERIES = (
    "//para//text",
    "//item",
    "/book/note",
    "//entry//text",
    "//ref",
)


def time_build(store, depth_limit: int, trace: bool, repeats: int):
    """Best-of-N build wall time (and the index from the last run)."""
    best = float("inf")
    index = None
    for _ in range(repeats):
        config = FixIndexConfig(
            depth_limit=depth_limit, obs=ObsConfig(trace=trace)
        )
        started = time.perf_counter()
        index = FixIndex.build(store, config)
        best = min(best, time.perf_counter() - started)
    return best, index


def time_queries(
    index: FixIndex, count: int, ticker: bool = False, repeats: int = 1
):
    """Best-of-N wall time of a ``count``-query batch, plus the answers
    and the exact per-query latencies of *every* batch — the registry's
    ``query.seconds`` sketch sees them all, so the accuracy check needs
    them all.  ``ticker=True`` runs the batches under an aggressive
    50 ms resource sampler."""
    processor = FixQueryProcessor(index)
    sampler = (
        ResourceSampler(index.obs.registry, index=index, interval=0.05)
        if ticker
        else None
    )
    if sampler is not None:
        sampler.start()
    best = float("inf")
    answers: list = []
    latencies: list = []
    for _ in range(max(1, repeats)):
        answers = []
        started = time.perf_counter()
        for i in range(count):
            result = processor.query(QUERIES[i % len(QUERIES)])
            answers.append(result.results)
            latencies.append(result.seconds)
        best = min(best, time.perf_counter() - started)
    if sampler is not None:
        sampler.stop()
    return best, answers, latencies


def noop_span_ns(iterations: int = 200_000) -> float:
    """Nanoseconds per disabled-mode instrumentation site."""
    tracer = Tracer(enabled=False)
    span = tracer.span  # the attribute fetch a call site pays
    started = time.perf_counter_ns()
    for _ in range(iterations):
        with span("x"):
            pass
    return (time.perf_counter_ns() - started) / iterations


def overhead_pct(enabled: float, disabled: float) -> float:
    return (enabled - disabled) / disabled * 100.0 if disabled else 0.0


def sketch_observe_ns(observations: int = 100_000) -> float:
    """Nanoseconds per ``QuantileSketch.observe`` at the default k,
    over a stream long enough to exercise multi-level compaction."""
    sketch = QuantileSketch("bench")
    values = [((i * 2654435761) % 1_000_003) / 1e6 for i in range(observations)]
    started = time.perf_counter_ns()
    observe = sketch.observe
    for v in values:
        observe(v)
    return (time.perf_counter_ns() - started) / observations


def sketch_merge_us(chunks: int = 32, per_chunk: int = 400) -> float:
    """Microseconds per chunk ``merge`` — the worker-absorb unit."""
    parts = []
    for c in range(chunks):
        part = QuantileSketch("bench")
        for i in range(per_chunk):
            part.observe(((c * per_chunk + i) * 48271) % 99991 / 1e3)
        parts.append(part.as_dict())
    merged = QuantileSketch("bench")
    started = time.perf_counter_ns()
    for state in parts:
        merged.merge(state)
    return (time.perf_counter_ns() - started) / chunks / 1e3


def sketch_accuracy(exact_latencies: list[float], sketch) -> dict:
    """Measured max rank error of the sketch's p50/p90/p95/p99 against
    the exact latency list, plus the sketch's own claimed bound."""
    ordered = sorted(exact_latencies)
    n = len(ordered)
    qs = (0.5, 0.9, 0.95, 0.99)
    estimates = sketch.quantiles(qs)
    max_rank_error = 0.0
    per_quantile = {}
    for q, got in zip(qs, estimates):
        lo = 1 + sum(1 for v in ordered if v < got)
        hi = max(lo, sum(1 for v in ordered if v <= got))
        target = q * n
        error = max(0.0, lo - target, target - hi) / n
        max_rank_error = max(max_rank_error, error)
        per_quantile[f"p{int(q * 100)}"] = {
            "estimate_s": got,
            "exact_s": ordered[max(0, math.ceil(target) - 1)],
            "rank_error": error,
        }
    bound = sketch.rank_error_bound()
    return {
        "count": n,
        "max_rank_error": max_rank_error,
        "claimed_bound": bound,
        "within_bound": max_rank_error <= bound + 1.0 / n,
        "per_quantile": per_quantile,
    }


def run_benchmark(
    documents: int, chains: int, depth: int, seed: int,
    queries: int, repeats: int,
) -> dict:
    store = build_corpus(documents, chains, depth, seed)
    doc_ids = list(store.doc_ids())
    print(f"corpus: {len(doc_ids)} documents, depth {depth}")

    disabled_s, plain = time_build(store, depth, trace=False, repeats=repeats)
    enabled_s, traced = time_build(store, depth, trace=True, repeats=repeats)
    span_events = sum(
        1 for e in traced.obs.tracer.events if e.get("type") == "span"
    )
    build_overhead = overhead_pct(enabled_s, disabled_s)
    print(
        f"build: disabled {disabled_s:.3f}s, enabled {enabled_s:.3f}s "
        f"({build_overhead:+.1f}%, {span_events} spans)"
    )

    identical = btree_digest(plain) == btree_digest(traced)
    print(f"B-tree contents identical with tracing on: {identical}")

    query_disabled_s, plain_answers, exact_latencies = time_queries(
        plain, queries, repeats=repeats
    )
    query_enabled_s, traced_answers, _ = time_queries(
        traced, queries, repeats=repeats
    )
    answers_match = plain_answers == traced_answers
    query_overhead = overhead_pct(query_enabled_s, query_disabled_s)
    print(
        f"query x{queries}: disabled {query_disabled_s:.3f}s, "
        f"enabled {query_enabled_s:.3f}s ({query_overhead:+.1f}%), "
        f"answers match: {answers_match}"
    )

    # The disabled-mode batch still feeds the always-on sketches; its
    # query.seconds sketch vs the exact latency list is the accuracy
    # measurement (same process, same queries, zero extra work).
    accuracy = sketch_accuracy(
        exact_latencies, plain.obs.registry.sketch("query.seconds")
    )
    print(
        f"sketch accuracy over {accuracy['count']} queries: max rank "
        f"error {accuracy['max_rank_error']:.4f} "
        f"(claimed bound {accuracy['claimed_bound']:.4f}, "
        f"within: {accuracy['within_bound']})"
    )

    ticker_s, ticker_answers, _ = time_queries(
        plain, queries, ticker=True, repeats=repeats
    )
    ticker_overhead = overhead_pct(ticker_s, query_disabled_s)
    ticker_match = ticker_answers == plain_answers
    print(
        f"query x{queries} + 50ms resource ticker: {ticker_s:.3f}s "
        f"({ticker_overhead:+.1f}%), answers match: {ticker_match}"
    )

    observe_ns = sketch_observe_ns()
    merge_us = sketch_merge_us()
    # Each query observes 4 sketch series; that cost as a share of the
    # measured batch is the sketches' own always-on overhead.
    sketch_overhead = (
        4 * queries * observe_ns / (query_disabled_s * 1e9) * 100.0
        if query_disabled_s
        else 0.0
    )
    print(
        f"sketch: {observe_ns:.0f}ns/observe, {merge_us:.1f}us/chunk-merge "
        f"-> always-on query overhead {sketch_overhead:.3f}% "
        f"(budget {BUDGET_PCT}%)"
    )

    ns_per_site = noop_span_ns()
    # Disabled-mode bound: every span the enabled build captured was a
    # no-op site in the disabled build.  Their total cost as a share of
    # the disabled build is the measured disabled-mode overhead.
    disabled_overhead = (
        span_events * ns_per_site / (disabled_s * 1e9) * 100.0
        if disabled_s
        else 0.0
    )
    print(
        f"no-op span: {ns_per_site:.0f}ns/site -> disabled-mode overhead "
        f"{disabled_overhead:.3f}% of build (budget {BUDGET_PCT}%)"
    )

    return {
        "corpus": {
            "documents": documents,
            "chains_per_document": chains,
            "depth": depth,
            "seed": seed,
        },
        "build": {
            "disabled_seconds": disabled_s,
            "enabled_seconds": enabled_s,
            "overhead_pct": build_overhead,
            "span_events": span_events,
            "byte_identical": identical,
        },
        "query": {
            "count": queries,
            "disabled_seconds": query_disabled_s,
            "enabled_seconds": query_enabled_s,
            "overhead_pct": query_overhead,
            "answers_match": answers_match,
        },
        "ticker": {
            "interval_seconds": 0.05,
            "seconds": ticker_s,
            "overhead_pct": ticker_overhead,
            "answers_match": ticker_match,
        },
        "sketch": {
            "observe_ns": observe_ns,
            "chunk_merge_us": merge_us,
            "always_on_query_overhead_pct": sketch_overhead,
            "accuracy": accuracy,
        },
        "noop_span": {
            "ns_per_site": ns_per_site,
            "disabled_overhead_pct": disabled_overhead,
        },
        "budget_pct": BUDGET_PCT,
        "within_budget": (
            disabled_overhead < BUDGET_PCT and sketch_overhead < BUDGET_PCT
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny corpus smoke run (CI still asserts the budget)",
    )
    parser.add_argument("--documents", type=int, default=None)
    parser.add_argument("--chains", type=int, default=None)
    parser.add_argument("--depth", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--queries", type=int, default=200,
        help="batch size (200 x 3 repeats = 600 observations pushes "
        "the query.seconds sketch past k=512, so the accuracy check "
        "exercises real compaction, not the lossless regime)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="build repetitions per mode (best-of)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="output JSON path (default: BENCH_obs.json at the repo "
        "root; quick runs print only unless --out is set)",
    )
    args = parser.parse_args(argv)

    documents = args.documents or (4 if args.quick else 10)
    chains = args.chains or (2 if args.quick else 3)
    depth = args.depth or (8 if args.quick else 18)
    repeats = args.repeats or (1 if args.quick else 3)
    report = run_benchmark(
        documents, chains, depth, args.seed, args.queries, repeats
    )

    out = args.out
    if out is None and not args.quick:
        out = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs.json")
    if out is not None:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {os.path.abspath(out)}")

    failed = False
    if not report["build"]["byte_identical"]:
        print("FAIL: tracing perturbed the B-tree contents")
        failed = True
    if not report["query"]["answers_match"]:
        print("FAIL: tracing perturbed the query answers")
        failed = True
    if not report["ticker"]["answers_match"]:
        print("FAIL: the resource ticker perturbed the query answers")
        failed = True
    if not report["sketch"]["accuracy"]["within_bound"]:
        print(
            "FAIL: measured sketch rank error "
            f"{report['sketch']['accuracy']['max_rank_error']:.4f} exceeds "
            f"the claimed bound "
            f"{report['sketch']['accuracy']['claimed_bound']:.4f}"
        )
        failed = True
    if not report["within_budget"]:
        print(
            f"FAIL: disabled-mode overhead "
            f"{report['noop_span']['disabled_overhead_pct']:.3f}% "
            f"exceeds the {BUDGET_PCT}% budget"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

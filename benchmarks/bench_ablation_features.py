"""Ablation: what each component of the feature key buys.

Compares candidate counts under (a) root label alone, (b) the paper's
``(root label, λ_min, λ_max)`` range key, and (c) the full-spectrum
multiset-subset test the paper sketches in Section 3.3 but rejects for
engineering reasons.  DESIGN.md §5 lists this as design decision 1.
"""

from __future__ import annotations

from repro.bench.ablation import print_feature_ablation, run_feature_ablation
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_feature_ablation_report(benchmark):
    rows = benchmark.pedantic(
        lambda: run_feature_ablation(
            scale=min(BENCH_SCALE, 0.5), seed=BENCH_SEED
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print_feature_ablation(rows)
    assert rows

    for row in rows:
        # Monotone pruning: each richer key prunes at least as much.
        assert row.cdt_range <= row.cdt_label_only
        assert row.cdt_spectrum <= row.cdt_range
        # Completeness: no variant prunes below the truth.
        assert row.cdt_spectrum >= 0
        assert row.rst <= row.cdt_range

    # The eigenvalue range must add real pruning beyond the label on
    # structure-rich data — that is FIX's whole point.
    assert any(row.cdt_range < row.cdt_label_only * 0.8 for row in rows)

"""Figure 7: the value-extended index on DBLP — metrics of the value
queries, runtime against F&B, and the Section 4.6 construction-cost
trade-off."""

from __future__ import annotations

import pytest

from repro.bench.figure7 import print_figure7, run_figure7
from repro.bench.paper_queries import FIGURE7_QUERIES
from repro.core import FixIndex, FixIndexConfig, FixQueryProcessor
from repro.query import twig_of
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


@pytest.fixture(scope="module")
def value_processor(bundles, stores):
    bundle = bundles["dblp"]
    index = FixIndex.build(
        stores["dblp"],
        FixIndexConfig(depth_limit=bundle.depth_limit, value_buckets=10),
    )
    return FixQueryProcessor(index)


@pytest.mark.parametrize(
    "query_id, query", FIGURE7_QUERIES, ids=[q for q, _ in FIGURE7_QUERIES]
)
def test_value_query(benchmark, query_id, query, value_processor):
    """Two-phase evaluation of a value query on the value-extended index."""
    twig = twig_of(query)
    result = benchmark(lambda: value_processor.query(twig))
    assert result.result_count <= result.candidate_count


def test_figure7_report(benchmark):
    """Regenerate and print Figure 7; verify the portable claims."""
    report = benchmark.pedantic(
        lambda: run_figure7(scale=BENCH_SCALE, seed=BENCH_SEED, repeats=3),
        rounds=1,
        iterations=1,
    )
    print()
    print_figure7(report)

    # The headline of Figure 7a: for the value queries, pruning power is
    # almost identical to selectivity (the integrated index "eliminates
    # the need for index anding").
    for row in report.rows:
        assert row.sel - row.pp < 0.08, row.query_id
        assert row.false_negatives == 0

    # Section 4.6's cost warning: value support does not come for free —
    # construction is measurably more expensive than pure structural
    # (the paper quotes ~30x time / ~10x memory on full-size DBLP with
    # beta=10; the direction is the reproducible part).
    assert report.value_build_seconds > report.structural_build_seconds

"""Quantify the Theorem 5 completeness gap (reproduction contribution;
DESIGN.md §5a, EXPERIMENTS.md "Reproduction finding").

Sweeps parlist/listitem-style recursion depth against alternating-chain
query length and reports how many true answers the published feature key
prunes.  The structural condition for loss is: the data nests *deeper*
than the query chain (so a sibling shares the deeper class and the extra
bisimulation edge can shrink λ_max below the query's).
"""

from __future__ import annotations

from repro.bench.gap import print_gap_sweep, run_gap_sweep


def test_gap_quantification_report(benchmark):
    rows = benchmark.pedantic(
        lambda: run_gap_sweep(), rounds=1, iterations=1
    )
    print()
    print_gap_sweep(rows)

    by_cell = {(row.max_nesting, row.chain_length): row for row in rows}

    # Chains of length 1 nest (parlist/listitem) never lose: the gap
    # needs a repeated label pair *along the query path*.
    for nesting in (1, 2, 3, 4):
        shallow = by_cell[(nesting, 2)]
        assert shallow.false_negatives == 0

    # The lossy regime is real and substantial: deep chains over deeper
    # data lose a double-digit fraction of their true answers.
    deep = [row for row in rows if row.chain_length > 2]
    assert deep, "sweep must include deep chains"
    assert any(row.loss_rate > 0.10 for row in deep)

"""Table 1: index construction time and sizes.

``test_table1_report`` regenerates the full table (both index variants
on all four data sets); the per-data-set benchmarks time unclustered
construction — the ICT column — in isolation.
"""

from __future__ import annotations

import pytest

from repro.bench.table1 import print_table1, run_table1
from repro.core import FixIndex, FixIndexConfig
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


@pytest.mark.parametrize("dataset", ["xbench", "dblp", "xmark", "treebank"])
def test_construction_time(benchmark, dataset, bundles, stores):
    """ICT: unclustered index construction per data set."""
    bundle = bundles[dataset]
    store = stores[dataset]
    config = FixIndexConfig(depth_limit=bundle.depth_limit)
    index = benchmark.pedantic(
        lambda: FixIndex.build(store, config), rounds=2, iterations=1
    )
    assert index.entry_count > 0


def test_table1_report(benchmark):
    """Regenerate and print the full Table 1."""
    rows = benchmark.pedantic(
        lambda: run_table1(scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    print()
    print_table1(rows)
    assert len(rows) == 4
    # The paper's size relationships must hold: the clustered index
    # carries the redundant copies, so it is strictly larger.
    for row in rows:
        assert row.clustered_bytes > row.unclustered_bytes
    # Treebank is the construction-time outlier (375s vs 17-86s in the
    # paper): its structures barely repeat, so it pays the most
    # eigen-decompositions per element.
    by_name = {row.dataset: row for row in rows}
    assert (
        by_name["treebank"].construction_seconds
        > by_name["xbench"].construction_seconds
    )

"""pytest-benchmark suite: one module per table/figure of the paper.

Run with:  pytest benchmarks/ --benchmark-only
Scale with:  REPRO_BENCH_SCALE=1.0 pytest benchmarks/ --benchmark-only
"""

"""Figure 5: average sel / pp / fpr over random query batches.

The paper uses 1000 random queries per data set; the benchmark default
is ``REPRO_BENCH_QUERIES`` (60) per set to keep the suite quick — the
shape claims it checks are stable from a few dozen queries up.
"""

from __future__ import annotations

import os

from repro.bench.figure5 import print_figure5, run_figure5
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED

BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "60"))


def test_figure5_report(benchmark):
    """Regenerate and print the Figure 5 averages; verify the shapes."""
    rows = benchmark.pedantic(
        lambda: run_figure5(
            scale=BENCH_SCALE, seed=BENCH_SEED, queries=BENCH_QUERIES
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print_figure5(rows)
    by_name = {row.dataset: row for row in rows}

    # Every data set produced a filtered batch.
    assert all(row.queries > 0 for row in rows)

    # The paper's Figure 5 reading: average pp is very close to average
    # sel for XMark and Treebank...
    for name in ("xmark", "treebank"):
        row = by_name[name]
        assert row.avg_pp >= row.avg_sel - 0.1, name
    # ...but clearly behind for the text-centric collection (paper:
    # ~32-point gap for TCMD; DBLP in between).
    xbench = by_name["xbench"]
    assert xbench.avg_sel - xbench.avg_pp > 0.1

    # False negatives: zero on the non-recursive workloads.  The
    # recursive data sets (XMark's parlist nesting, Treebank's grammar)
    # CAN lose answers — the Theorem 5 gap of DESIGN.md §5a observed in
    # the wild — so for those the harness only requires that the gap is
    # *measured*, not hidden.
    assert by_name["xbench"].false_negatives == 0
    assert by_name["dblp"].false_negatives == 0

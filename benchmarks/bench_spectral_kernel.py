"""Spectral-kernel benchmark: legacy complex path vs real-SVD kernel.

Two sections:

* **micro** — random anti-symmetric pattern matrices in three mixes
  (small n=2-3, medium n=4-8, large n=10-24), each solved three ways:

  - ``legacy``     — per-pattern ``eigvalsh(1j*M)`` (the seed's path);
  - ``real``       — per-pattern real kernel (closed forms for n<=3,
    real SVD otherwise);
  - ``batched``    — one :func:`repro.spectral.solve_batch` call per
    mix: misses bucketed by dimension, one stacked LAPACK dispatch
    per bucket.

  Every range is cross-checked: batched == per-pattern *exactly*,
  real vs legacy within 1e-9, and ``lmin == -lmax`` exactly for the
  real kernel.

* **end-to-end** — two cold builds (feature cache off, so every
  pattern pays its eigensolve) of the same medium deep-chain corpus,
  one under ``eigen_solver="legacy"`` and one under ``"real"``.  The
  acceptance bar is a >= 2x speedup of the eigen phase, with byte-wise
  identical query answers, all feature ranges agreeing within 1e-9,
  and exact λ symmetry for every real-kernel key.

Standalone runner (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_spectral_kernel.py [--quick]

writes ``BENCH_spectral.json`` at the repository root with the raw
timings, batching profiles, and equivalence checks.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

import numpy as np

from repro.core import FixIndex, FixIndexConfig, FixQueryProcessor
from repro.btree.keys import decode_feature_key
from repro.spectral import solve_batch
from repro.spectral.kernel import legacy_range, singular_range
from repro.storage import PrimaryXMLStore
from repro.xmltree import Document, Element

TARGET_SPEEDUP = 2.0
TOLERANCE = 1e-9
LABELS = ("para", "note", "item", "entry", "ref", "cite")
QUERIES = ("//para", "//item//text", "//note", "//entry//text")


# --------------------------------------------------------------------- #
# Micro: solver cost per pattern mix
# --------------------------------------------------------------------- #


def random_antisymmetric(rng: np.random.Generator, n: int) -> np.ndarray:
    """A DAG-shaped anti-symmetric matrix with integer edge weights."""
    upper = np.triu(rng.integers(1, 40, size=(n, n)).astype(np.float64), 1)
    mask = np.triu(rng.random((n, n)) < 0.7, 1)
    upper *= mask
    return upper - upper.T


def make_mix(
    name: str, dims: tuple[int, int], count: int, seed: int
) -> tuple[str, list[np.ndarray]]:
    rng = np.random.default_rng(seed)
    low, high = dims
    matrices = [
        random_antisymmetric(rng, int(rng.integers(low, high + 1)))
        for _ in range(count)
    ]
    return name, matrices


def time_micro_mix(name: str, matrices: list[np.ndarray]) -> dict:
    """Time the three solver paths over one mix and cross-check them."""
    started = time.perf_counter()
    legacy = [legacy_range(matrix) for matrix in matrices]
    legacy_seconds = time.perf_counter() - started

    started = time.perf_counter()
    per_pattern = [singular_range(matrix) for matrix in matrices]
    real_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched, buckets = solve_batch(matrices)
    batched_seconds = time.perf_counter() - started

    max_delta = 0.0
    for legacy_r, scalar_r, batch_r in zip(legacy, per_pattern, batched):
        if batch_r != scalar_r:
            raise SystemExit(
                f"FAIL({name}): batched result {batch_r} differs from "
                f"per-pattern result {scalar_r}"
            )
        if batch_r[0] != -batch_r[1]:
            raise SystemExit(f"FAIL({name}): asymmetric range {batch_r}")
        max_delta = max(max_delta, abs(batch_r[1] - legacy_r[1]))
    if max_delta > TOLERANCE:
        raise SystemExit(
            f"FAIL({name}): real vs legacy disagree by {max_delta:.2e}"
        )

    return {
        "mix": name,
        "patterns": len(matrices),
        "dims": sorted({matrix.shape[0] for matrix in matrices}),
        "legacy_seconds": legacy_seconds,
        "real_seconds": real_seconds,
        "batched_seconds": batched_seconds,
        "batched_speedup": (
            legacy_seconds / batched_seconds if batched_seconds else 0.0
        ),
        "buckets": {str(dim): count for dim, count in sorted(buckets.items())},
        "max_range_delta": max_delta,
    }


def run_micro(quick: bool, seed: int) -> list[dict]:
    scale = 1 if quick else 8
    mixes = [
        make_mix("small", (2, 3), 500 * scale, seed),
        make_mix("medium", (4, 8), 250 * scale, seed + 1),
        make_mix("large", (10, 24), 60 * scale, seed + 2),
    ]
    rows = []
    for name, matrices in mixes:
        row = time_micro_mix(name, matrices)
        rows.append(row)
        print(
            f"micro/{name:6s} {row['patterns']:5d} patterns  "
            f"legacy {row['legacy_seconds']:6.3f}s  "
            f"batched {row['batched_seconds']:6.3f}s  "
            f"({row['batched_speedup']:.2f}x)"
        )
    return rows


# --------------------------------------------------------------------- #
# End-to-end: cold builds under each solver
# --------------------------------------------------------------------- #


def _chain(rng: random.Random, depth: int) -> Element:
    element = Element(rng.choice(LABELS))
    if depth > 1:
        for _ in range(2 if rng.random() < 0.22 else 1):
            element.append(_chain(rng, depth - 1))
    else:
        element.add_element("text")
    return element


def build_corpus(documents: int, chains: int, depth: int, seed: int) -> PrimaryXMLStore:
    """Structurally *distinct* deep documents (one seed each), so a
    cold build really pays one eigensolve per distinct pattern."""
    store = PrimaryXMLStore()
    for i in range(documents):
        rng = random.Random(seed + i)
        root = Element("book")
        for _ in range(chains):
            root.append(_chain(rng, depth))
        store.add_document(Document(root))
    return store


def run_build(store: PrimaryXMLStore, solver: str, depth_limit: int) -> dict:
    config = FixIndexConfig(
        depth_limit=depth_limit, feature_cache=False, eigen_solver=solver
    )
    started = time.perf_counter()
    index = FixIndex.build(store, config)
    seconds = time.perf_counter() - started
    stats = index.report.stats
    processor = FixQueryProcessor(index)
    answers = {
        query: sorted(map(str, processor.query(query).results))
        for query in QUERIES
    }
    return {
        "solver": index.report.eigen_solver,
        "seconds": seconds,
        "eigen_seconds": index.report.timings.as_dict()["eigen"],
        "phases": index.report.timings.as_dict(),
        "entries": index.entry_count,
        "eigen_computations": stats.eigen_computations,
        "eigen_batches": stats.eigen_batches,
        "eigen_batch_sizes": {
            str(size): count
            for size, count in sorted(stats.eigen_batch_sizes.items())
        },
        "largest_pattern": stats.largest_pattern,
        "_index": index,
        "_answers": answers,
    }


def compare_builds(legacy: dict, real: dict) -> dict:
    """Equivalence checks between the two builds."""
    if legacy["_answers"] != real["_answers"]:
        raise SystemExit("FAIL: query answers differ between solvers")

    # Keys with near-tie ranges can order differently between solvers
    # (the deltas are ~1e-14), so match entries by their pointer value,
    # which is unique per indexed element.
    legacy_by_value = {
        value: decode_feature_key(key)
        for key, value in legacy["_index"].btree.items()
    }
    real_by_value = {
        value: decode_feature_key(key)
        for key, value in real["_index"].btree.items()
    }
    if set(legacy_by_value) != set(real_by_value):
        raise SystemExit("FAIL: entry pointers differ between solvers")
    max_delta = 0.0
    for value, (label_l, lmax_l, lmin_l) in legacy_by_value.items():
        label_r, lmax_r, lmin_r = real_by_value[value]
        if label_l != label_r:
            raise SystemExit("FAIL: key labels differ between solvers")
        if lmin_r != -lmax_r:
            raise SystemExit(f"FAIL: asymmetric real key ({lmin_r}, {lmax_r})")
        max_delta = max(
            max_delta, abs(lmax_r - lmax_l), abs(lmin_r - lmin_l)
        )
    if max_delta > TOLERANCE:
        raise SystemExit(f"FAIL: feature ranges disagree by {max_delta:.2e}")

    eigen_speedup = (
        legacy["eigen_seconds"] / real["eigen_seconds"]
        if real["eigen_seconds"]
        else 0.0
    )
    return {
        "identical_query_results": True,
        "max_range_delta": max_delta,
        "real_keys_exactly_symmetric": True,
        "eigen_phase_speedup": eigen_speedup,
        "total_build_speedup": (
            legacy["seconds"] / real["seconds"] if real["seconds"] else 0.0
        ),
    }


def run_end_to_end(quick: bool, seed: int) -> dict:
    documents = 3 if quick else 10
    chains = 2 if quick else 3
    depth = 8 if quick else 20
    store = build_corpus(documents, chains, depth, seed)
    elements = sum(
        store.get_document(doc_id).element_count()
        for doc_id in store.doc_ids()
    )
    print(f"corpus: {documents} distinct documents, {elements} elements")

    runs = {}
    for solver in ("legacy", "real"):
        run = run_build(store, solver, depth_limit=depth)
        runs[solver] = run
        batches = (
            f", {run['eigen_batches']} stacked batches"
            if run["eigen_batches"]
            else ""
        )
        print(
            f"build[{solver:6s}] {run['seconds']:6.2f}s total, "
            f"eigen {run['eigen_seconds']:6.2f}s "
            f"({run['eigen_computations']} solves{batches})"
        )

    checks = compare_builds(runs["legacy"], runs["real"])
    print(
        f"eigen-phase speedup: {checks['eigen_phase_speedup']:.2f}x "
        f"(target {TARGET_SPEEDUP:.0f}x), "
        f"max range delta {checks['max_range_delta']:.2e}"
    )
    for run in runs.values():
        run.pop("_index")
        run.pop("_answers")
    return {
        "corpus": {
            "documents": documents,
            "chains_per_document": chains,
            "depth": depth,
            "seed": seed,
            "elements": elements,
            "depth_limit": depth,
            "feature_cache": False,
        },
        "queries": list(QUERIES),
        "runs": [runs["legacy"], runs["real"]],
        "checks": checks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny smoke run (CI); skips the speedup assertion and does "
        "not write BENCH_spectral.json unless --out is given",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="output JSON path (default: BENCH_spectral.json at the repo "
        "root; quick runs print only unless --out is set)",
    )
    args = parser.parse_args(argv)

    micro = run_micro(args.quick, args.seed)
    end_to_end = run_end_to_end(args.quick, args.seed)

    report = {
        "tolerance": TOLERANCE,
        "target_speedup": TARGET_SPEEDUP,
        "micro": micro,
        "end_to_end": end_to_end,
    }

    out = args.out
    if out is None and not args.quick:
        out = os.path.join(
            os.path.dirname(__file__), "..", "BENCH_spectral.json"
        )
    if out is not None:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {os.path.abspath(out)}")

    speedup = end_to_end["checks"]["eigen_phase_speedup"]
    if not args.quick and speedup < TARGET_SPEEDUP:
        print(f"FAIL: eigen-phase speedup below the {TARGET_SPEEDUP:.0f}x target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

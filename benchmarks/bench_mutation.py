"""Mutation-path benchmark: epoch-scoped invalidation under churn.

The epoch layer's promise is that mutating one slice of the corpus
costs only that slice's consumers: plans, histogram slices, and
spatial partitions over *untouched* root labels survive every
mutation, so steady-state query latency on a churning corpus should
approach the read-only index, and the plan-cache hit rate for
untouched labels should be *unchanged* by churn elsewhere.

Three sections:

* **read-only vs churn** — a query mix over label families 1..k runs
  against (a) a quiet index and (b) the same index while family 0
  churns (add+remove between query batches).  Reported: per-query
  latency for both, their ratio, and the plan-cache hit rate of the
  untouched-family queries under churn (acceptance: identical to the
  read-only hit rate — scoped invalidation means churn on family 0 is
  invisible to the others' plans).

* **global-counter comparison** — the same churn workload with the
  plan cache forced onto the legacy exact-generation test (what the
  single global counter gave us): every mutation invalidates every
  plan, so each query batch re-plans (re-parses, re-eigensolves).

* **concurrent checksum grid** — a mutator thread races a query
  thread over a shards x workers x backend x pushdown grid; every
  observed answer's checksum must equal the pre- or post-mutation
  quiesced answer (snapshot isolation: never a torn mix), and the
  settled index must answer checksum-identical to a quiesced rerun.

Standalone runner (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_mutation.py [--quick]

writes ``BENCH_mutation.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import threading
import time

from repro.core import (
    FixIndex,
    FixIndexConfig,
    FixQueryProcessor,
    ShardedFixIndex,
)
from repro.storage import PrimaryXMLStore
from repro.xmltree import parse_xml

#: disjoint label families: family i's documents contain only family-i
#: labels, so mutations to one family share no root label with the
#: plans, histogram slices, or spatial partitions of any other.
FAMILY_COUNT = 4
FAMILY_SHAPES = [
    "<fam{i}><rec{i}><name{i}/><addr{i}/></rec{i}><rec{i}><name{i}/></rec{i}></fam{i}>",
    "<fam{i}><rec{i}><name{i}/><mail{i}><to{i}/></mail{i}></rec{i}></fam{i}>",
    "<fam{i}><idx{i}><key{i}/></idx{i}><rec{i}><name{i}/></rec{i}></fam{i}>",
]


def family_source(family: int, variant: int) -> str:
    return FAMILY_SHAPES[variant % len(FAMILY_SHAPES)].format(i=family)


def corpus(docs_per_family: int) -> list[str]:
    return [
        family_source(family, variant)
        for family in range(FAMILY_COUNT)
        for variant in range(docs_per_family)
    ]


def untouched_query_mix() -> list[str]:
    """Queries over families 1..k-1 only — family 0 is the churn zone."""
    mix = []
    for family in range(1, FAMILY_COUNT):
        mix.append(f"//rec{family}/name{family}")
        mix.append(f"//fam{family}/rec{family}")
    return mix


def answer_checksum(result) -> str:
    payload = ",".join(
        f"{p.doc_id}:{p.node_id}" for p in sorted(result.results)
    )
    return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


def build_plain(sources, depth_limit: int = 3) -> FixIndex:
    store = PrimaryXMLStore()
    for source in sources:
        store.add_document(parse_xml(source))
    return FixIndex.build(store, FixIndexConfig(depth_limit=depth_limit))


def build_sharded(sources, shards: int, depth_limit: int = 3) -> ShardedFixIndex:
    store = PrimaryXMLStore()
    for source in sources:
        store.add_document(parse_xml(source))
    return ShardedFixIndex.build(
        store, FixIndexConfig(depth_limit=depth_limit, shards=shards)
    )


# --------------------------------------------------------------------- #
# Section 1+2: steady-state latency and plan retention under churn
# --------------------------------------------------------------------- #


def run_query_batches(processor, mix, batches, mutate=None) -> float:
    """Total seconds spent querying (mutations excluded from the
    clock); ``mutate(batch_index)`` runs between batches."""
    spent = 0.0
    for batch in range(batches):
        if mutate is not None:
            mutate(batch)
        started = time.perf_counter()
        for query in mix:
            processor.query(query)
        spent += time.perf_counter() - started
    return spent


def bench_churn(docs_per_family: int, batches: int) -> dict:
    mix = untouched_query_mix()
    churn_source = family_source(0, 0)

    # Read-only baseline.
    index = build_plain(corpus(docs_per_family))
    processor = FixQueryProcessor(index)
    readonly_seconds = run_query_batches(processor, mix, batches)
    readonly_stats = processor.plan_cache.stats_dict()

    # Churning: family 0 mutates between every batch.
    index = build_plain(corpus(docs_per_family))
    processor = FixQueryProcessor(index)

    def mutate(_batch):
        doc_id = index.add_document(parse_xml(churn_source))
        index.remove_document(doc_id)

    churn_seconds = run_query_batches(processor, mix, batches, mutate)
    churn_stats = processor.plan_cache.stats_dict()

    # The same churn with the legacy global-counter invalidation: every
    # mutation kills every plan (exact-generation matching), so each
    # batch replans its whole mix.
    index = build_plain(corpus(docs_per_family))
    processor = FixQueryProcessor(index)
    legacy_generation = index.generation

    def mutate_legacy(_batch):
        nonlocal legacy_generation
        doc_id = index.add_document(parse_xml(churn_source))
        index.remove_document(doc_id)
        legacy_generation = index.generation

    # Force PlanCache.get onto the legacy int path: exact-generation
    # matching, i.e. the global counter's invalidate-everything model.
    processor._epoch_view = lambda: legacy_generation  # type: ignore[method-assign]
    global_seconds = run_query_batches(
        processor, mix, batches, mutate_legacy
    )
    global_stats = processor.plan_cache.stats_dict()

    queries = batches * len(mix)
    return {
        "queries_per_mode": queries,
        "readonly_ms_per_query": readonly_seconds / queries * 1e3,
        "churn_ms_per_query": churn_seconds / queries * 1e3,
        "global_counter_ms_per_query": global_seconds / queries * 1e3,
        "churn_over_readonly": churn_seconds / readonly_seconds,
        "global_over_readonly": global_seconds / readonly_seconds,
        "readonly_plan_hit_rate": readonly_stats["hit_rate"],
        "churn_plan_hit_rate": churn_stats["hit_rate"],
        "global_counter_plan_hit_rate": global_stats["hit_rate"],
        "plans_retained_across_epochs": churn_stats["scoped_retained"],
        "hit_rate_unchanged_by_churn": readonly_stats["hit_rate"]
        == churn_stats["hit_rate"],
    }


# --------------------------------------------------------------------- #
# Section 3: concurrent mutate+query vs quiesced, across the grid
# --------------------------------------------------------------------- #


def bench_concurrent_grid(docs_per_family: int, churn_rounds: int) -> list[dict]:
    sources = corpus(docs_per_family)
    churn_source = family_source(0, 1)
    mix = untouched_query_mix() + ["//rec0/name0"]
    results = []
    for shards in (1, 2):
        for workers in (1, 2):
            for backend in ("btree", "rtree"):
                pushdown_options = (False, True) if shards > 1 else (False,)
                for pushdown in pushdown_options:
                    if pushdown and backend == "rtree":
                        continue  # one pushdown flavour keeps the grid small
                    results.append(
                        _concurrent_cell(
                            sources,
                            churn_source,
                            mix,
                            shards=shards,
                            workers=workers,
                            backend=backend,
                            pushdown=pushdown,
                            churn_rounds=churn_rounds,
                        )
                    )
    return results


def _concurrent_cell(
    sources,
    churn_source,
    mix,
    *,
    shards: int,
    workers: int,
    backend: str,
    pushdown: bool,
    churn_rounds: int,
) -> dict:
    if shards > 1:
        index = build_sharded(sources, shards)
    else:
        index = build_plain(sources)
    processor = FixQueryProcessor(
        index, workers=workers, prune_backend=backend, pushdown=pushdown
    )
    # Quiesced checksums for both reachable states: churn-doc absent
    # (pre) and churn-doc present (post) — the mutator below always
    # returns to absent, and snapshot isolation means every concurrent
    # answer must equal one of the two.
    pre = {q: answer_checksum(processor.query(q)) for q in mix}
    probe_id = index.add_document(parse_xml(churn_source))
    post = {q: answer_checksum(processor.query(q)) for q in mix}
    index.remove_document(probe_id)

    errors: list[BaseException] = []
    done = threading.Event()
    started = threading.Event()

    def mutate():
        try:
            started.wait(timeout=30)  # overlap with the query sweeps
            for _ in range(churn_rounds):
                doc_id = index.add_document(parse_xml(churn_source))
                index.remove_document(doc_id)
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)
        finally:
            done.set()

    observed = 0
    torn = 0
    thread = threading.Thread(target=mutate)
    thread.start()
    sweeps = 0
    while not done.is_set() or sweeps < 3:
        for query in mix:
            checksum = answer_checksum(processor.query(query))
            observed += 1
            if checksum not in (pre[query], post[query]):
                torn += 1
        sweeps += 1
        started.set()
    thread.join(timeout=60)
    if errors:
        raise errors[0]
    quiesced_identical = all(
        answer_checksum(processor.query(q)) == pre[q] for q in mix
    )
    cell = {
        "shards": shards,
        "workers": workers,
        "backend": backend,
        "pushdown": pushdown,
        "concurrent_answers": observed,
        "torn_answers": torn,
        "quiesced_checksum_identical": quiesced_identical,
    }
    if torn or not quiesced_identical:
        raise SystemExit(f"FAIL: snapshot isolation violated: {cell}")
    return cell


# --------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------- #


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller corpus / fewer rounds"
    )
    args = parser.parse_args()
    docs_per_family = 4 if args.quick else 12
    batches = 20 if args.quick else 60
    churn_rounds = 6 if args.quick else 15

    print("== churn vs read-only steady state ==")
    churn = bench_churn(docs_per_family, batches)
    for key, value in churn.items():
        print(f"  {key}: {value:.4f}" if isinstance(value, float) else f"  {key}: {value}")
    if not churn["hit_rate_unchanged_by_churn"]:
        print("FAIL: churn on family 0 changed untouched families' plan hit rate")
        return 1

    print("== concurrent mutate+query checksum grid ==")
    grid = bench_concurrent_grid(docs_per_family, churn_rounds)
    for cell in grid:
        print(
            f"  shards={cell['shards']} workers={cell['workers']} "
            f"backend={cell['backend']} pushdown={cell['pushdown']}: "
            f"{cell['concurrent_answers']} answers, "
            f"{cell['torn_answers']} torn, quiesced_identical="
            f"{cell['quiesced_checksum_identical']}"
        )

    out_path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_mutation.json",
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "quick": args.quick,
                "docs_per_family": docs_per_family,
                "families": FAMILY_COUNT,
                "churn": churn,
                "concurrent_grid": grid,
            },
            handle,
            indent=2,
        )
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

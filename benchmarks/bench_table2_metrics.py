"""Table 2: sel / pp / fpr for the twelve representative queries.

The per-query benchmarks time the *pruning phase* (feature extraction +
B-tree range scan) — the part of Algorithm 2 the metrics characterize;
``test_table2_report`` regenerates and prints the whole table and checks
the paper's qualitative claims.
"""

from __future__ import annotations

import pytest

from repro.bench.paper_queries import TABLE2_QUERIES
from repro.bench.table2 import print_table2, run_table2
from repro.query import twig_of
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


@pytest.mark.parametrize(
    "dataset, selectivity, query",
    TABLE2_QUERIES,
    ids=[f"{d}_{s}" for d, s, _ in TABLE2_QUERIES],
)
def test_pruning_phase(benchmark, dataset, selectivity, query, processors):
    """Time the candidate scan for one representative query."""
    processor = processors[dataset]
    twig = twig_of(query)
    candidates = benchmark(lambda: processor.prune(twig))
    assert isinstance(candidates, list)


def test_table2_report(benchmark):
    """Regenerate and print Table 2; verify the paper's shape claims."""
    rows = benchmark.pedantic(
        lambda: run_table2(scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    print()
    print_table2(rows)
    by_id = {row.query_id: row for row in rows}

    # No false negatives on any paper-style workload.
    assert all(row.false_negatives == 0 for row in rows)

    # Structure-rich data: pruning power tracks selectivity closely
    # (paper: XMark/Treebank pp within a few points of sel).
    for query_id in ("XMark_hi", "XMark_md", "XMark_lo", "TrBnk_lo"):
        row = by_id[query_id]
        assert row.pp >= row.sel - 0.08, query_id

    # Text-centric TCMD: pruning power falls far short of selectivity
    # (paper: 26% pp at 79% sel for TCMD_hi).
    assert by_id["TCMD_hi"].pp < by_id["TCMD_hi"].sel - 0.2
    assert by_id["TCMD_md"].pp < 0.3

    # Selectivity ordering within each data set: hi >= md >= lo.
    for prefix in ("TCMD", "DBLP", "XMark", "TrBnk"):
        assert by_id[f"{prefix}_hi"].sel >= by_id[f"{prefix}_lo"].sel, prefix

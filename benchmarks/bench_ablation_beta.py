"""Ablation: the Section 4.6 β trade-off.

Sweeps the value-hash bucket count on the DBLP value queries, measuring
construction time, B-tree size, edge-label vocabulary, and the value
queries' false-positive ratio.  The paper leaves "how to choose a proper
β" as future work; this bench is the experiment that question needs.
"""

from __future__ import annotations

from repro.bench.ablation import print_beta_sweep, run_beta_sweep
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_beta_sweep_report(benchmark):
    rows = benchmark.pedantic(
        lambda: run_beta_sweep(scale=min(BENCH_SCALE, 0.3), seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    print()
    print_beta_sweep(rows)
    assert len(rows) >= 3

    # Completeness is independent of beta (hashing cannot lose answers).
    assert all(row.false_negatives == 0 for row in rows)

    # More buckets -> richer edge vocabulary (monotone by construction).
    sizes = [row.encoder_size for row in rows]
    assert sizes == sorted(sizes)

    # The trade-off direction: the largest beta should not have a worse
    # false-positive ratio than the smallest (finer hashing separates
    # more values).
    assert rows[-1].avg_fpr <= rows[0].avg_fpr + 1e-9

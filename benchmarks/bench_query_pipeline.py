"""Query-pipeline benchmark: serial vs grouped vs parallel vs R-tree.

Exercises the two-phase processor (Algorithm 2) the way Figure 6's
query mix does, under the PR's pipeline overhaul, on two workloads:

* **repeated-query** — a fixed set of selective queries, each run many
  times against a small, hot index (everything in cache; planning is
  the dominant per-repetition cost).  The serial baseline
  (``plan_cache=False, grouped=False``) re-parses, re-decomposes, and
  re-eigensolves every repetition; the pipelined processor plans once
  per (query, index generation).  The acceptance bar is a >= 2x
  total-time speedup.

* **refinement-heavy** — low-selectivity queries over more documents
  than the primary store's LRU holds, with several candidates per
  document.  The ungrouped baseline follows candidates in key order,
  which interleaves documents and re-parses them once per candidate;
  grouped refinement fetches each document exactly once per query, and
  ``workers=4`` fans the document groups out on top.  The acceptance
  bar is a >= 1.5x speedup for the grouped+parallel run.

Every mode — including the R-tree pruning backend — must return the
exact same pointer-ordered result list for every query; the run fails
otherwise.

Standalone runner (not a pytest-benchmark module)::

    PYTHONPATH=src python benchmarks/bench_query_pipeline.py [--quick]

writes ``BENCH_query.json`` at the repository root with raw timings,
fetch counts, and speedups.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from repro.core import FixIndex, FixIndexConfig, FixQueryProcessor, QueryMetricsLog
from repro.storage import PrimaryXMLStore
from repro.xmltree import parse_xml

TARGET_PLAN_SPEEDUP = 2.0
TARGET_REFINE_SPEEDUP = 1.5

# Item variants: different subtree structures, so one document's
# candidates land under several distinct feature keys and a key-ordered
# candidate walk interleaves documents (the LRU-thrashing regime).
ITEM_VARIANTS = [
    "<item><name/><mailbox><mail><to/></mail></mailbox></item>",
    "<item><name/><payment/><mailbox><mail><to/></mail></mailbox></item>",
    "<item><name/><payment/><quantity/></item>",
    "<item><payment/><quantity/><shipping/></item>",
    "<item><name/><incategory/><mailbox><mail><to/></mail></mailbox></item>",
]
PERSON_VARIANTS = [
    "<person><name/><emailaddress/><phone/></person>",
    "<person><name/><emailaddress/></person>",
    "<person><name/><address><city/></address></person>",
]

# Low-selectivity queries: candidates in most documents, several per
# document (the refinement-bound mix of Figure 6).
REFINE_QUERIES = [
    "//item[name]/mailbox",
    "//item[payment]",
    "//person[name]",
    "//item/mailbox/mail",
]

# Selective queries: planning (parse + decompose + eigensolve) is the
# dominant per-repetition cost once candidates are rare.
PLAN_QUERIES = [
    "//item[name][payment]/mailbox/mail",
    "//person[emailaddress][phone]",
    "//item[incategory]/mailbox",
    "//item[payment][quantity][shipping]",
    "//person/address/city",
    "//item[name][missing]",
    "//item[name][payment][quantity]/mailbox/mail/to",
    "//person[name][emailaddress]/address/city",
]


def build_corpus(documents: int, seed: int) -> PrimaryXMLStore:
    rng = random.Random(seed)
    store = PrimaryXMLStore()
    for _ in range(documents):
        items = "".join(
            rng.choice(ITEM_VARIANTS) for _ in range(rng.randint(4, 7))
        )
        people = "".join(
            rng.choice(PERSON_VARIANTS) for _ in range(rng.randint(2, 4))
        )
        store.add_document(
            parse_xml(
                "<site><regions><asia>"
                f"{items}"
                "</asia></regions><people>"
                f"{people}"
                "</people></site>"
            )
        )
    return store


def timed_run(
    processor: FixQueryProcessor, queries: list[str], repeats: int
) -> tuple[float, dict[str, list], int]:
    """Run every query ``repeats`` times; return (seconds, results
    keyed by query, documents fetched)."""
    results: dict[str, list] = {}
    fetched = 0
    started = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            outcome = processor.query(query)
            results[query] = outcome.results
            fetched += outcome.documents_fetched
    return time.perf_counter() - started, results, fetched


def bench_plan_cache(index: FixIndex, repeats: int) -> dict:
    """Repeated-query workload: serial replanning vs the plan cache."""
    runs = []
    all_results = []
    for label, kwargs in (
        ("serial", {"plan_cache": False, "grouped": False}),
        ("plan-cached", {"plan_cache": True, "grouped": True}),
    ):
        log = QueryMetricsLog()
        processor = FixQueryProcessor(index, metrics_log=log, **kwargs)
        seconds, results, fetched = timed_run(processor, PLAN_QUERIES, repeats)
        summary = log.summary()
        runs.append(
            {
                "label": label,
                "seconds": seconds,
                "documents_fetched": fetched,
                "plan_seconds": summary["plan_seconds"],
                "plan_cache_hit_rate": summary["plan_cache_hit_rate"],
            }
        )
        all_results.append(results)
        print(
            f"  {label:12s} {seconds:7.3f}s  "
            f"(plan {summary['plan_seconds']:.3f}s, "
            f"cache hit rate {summary['plan_cache_hit_rate']:.0%})"
        )
    baseline = runs[0]["seconds"]
    for run in runs:
        run["speedup"] = baseline / run["seconds"] if run["seconds"] else 0.0
    return {
        "queries": PLAN_QUERIES,
        "repeats": repeats,
        "runs": runs,
        "results_identical": all(r == all_results[0] for r in all_results),
        "target_speedup": TARGET_PLAN_SPEEDUP,
        "speedup": runs[1]["speedup"],
    }


def bench_refinement(index: FixIndex, repeats: int, workers: int) -> dict:
    """Refinement-heavy workload across the four pipeline modes."""
    modes = (
        ("serial", {"grouped": False, "plan_cache": False}),
        ("grouped", {"grouped": True, "plan_cache": False}),
        ("parallel", {"grouped": True, "plan_cache": False, "workers": workers}),
        (
            "rtree",
            {"grouped": True, "plan_cache": False, "prune_backend": "rtree"},
        ),
    )
    # Build the spatial view outside the timed region: it is a one-off
    # per index generation, not a per-query cost.
    index.spatial_view()
    runs = []
    all_results = []
    for label, kwargs in modes:
        processor = FixQueryProcessor(index, **kwargs)
        seconds, results, fetched = timed_run(processor, REFINE_QUERIES, repeats)
        runs.append(
            {
                "label": label,
                "workers": kwargs.get("workers", 1),
                "backend": kwargs.get("prune_backend", "btree"),
                "seconds": seconds,
                "documents_fetched": fetched,
            }
        )
        all_results.append(results)
        print(
            f"  {label:12s} {seconds:7.3f}s  "
            f"({fetched} document fetches)"
        )
    baseline = runs[0]["seconds"]
    for run in runs:
        run["speedup"] = baseline / run["seconds"] if run["seconds"] else 0.0
    parallel = next(run for run in runs if run["label"] == "parallel")
    return {
        "queries": REFINE_QUERIES,
        "repeats": repeats,
        "runs": runs,
        "results_identical": all(r == all_results[0] for r in all_results),
        "target_speedup": TARGET_REFINE_SPEEDUP,
        "speedup": parallel["speedup"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny corpus smoke run (CI); skips the speedup assertions "
        "and does not write BENCH_query.json unless --out is given",
    )
    parser.add_argument(
        "--documents", type=int, default=None,
        help="corpus size (default 96 — beyond the primary store's LRU)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="repetitions per query (plan workload; refinement uses 1/10th)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="refinement fan-out width"
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="output JSON path (default: BENCH_query.json at the repo "
        "root; quick runs print only unless --out is set)",
    )
    args = parser.parse_args(argv)

    documents = args.documents or (10 if args.quick else 96)
    hot_documents = min(4, documents)
    plan_repeats = args.repeats or (5 if args.quick else 100)
    refine_repeats = max(1, plan_repeats // 10)

    store = build_corpus(documents, args.seed)
    elements = sum(
        store.get_document(doc_id).element_count() for doc_id in store.doc_ids()
    )
    started = time.perf_counter()
    index = FixIndex.build(store, FixIndexConfig(depth_limit=4))
    # The repeated-query workload runs against a small, fully cached
    # index: with pruning and refinement near-free, per-repetition cost
    # is the planning work the cache exists to eliminate.
    hot_store = build_corpus(hot_documents, args.seed)
    hot_index = FixIndex.build(hot_store, FixIndexConfig(depth_limit=4))
    print(
        f"corpus: {documents} documents, {elements} elements; "
        f"index: {index.entry_count} entries "
        f"(built in {time.perf_counter() - started:.2f}s); "
        f"hot corpus: {hot_documents} documents"
    )

    print(f"repeated-query workload ({plan_repeats} repetitions, hot corpus):")
    plan_report = bench_plan_cache(hot_index, plan_repeats)
    print(f"refinement-heavy workload ({refine_repeats} repetitions):")
    refine_report = bench_refinement(index, refine_repeats, args.workers)

    ok = True
    for name, report in (
        ("plan", plan_report), ("refinement", refine_report)
    ):
        if not report["results_identical"]:
            print(f"FAIL: {name} workload modes returned different results")
            ok = False
    if ok:
        print("all modes returned identical result lists")
    print(
        f"plan-cache speedup:       {plan_report['speedup']:.2f}x "
        f"(target {TARGET_PLAN_SPEEDUP:.1f}x)"
    )
    print(
        f"grouped+parallel speedup: {refine_report['speedup']:.2f}x "
        f"(target {TARGET_REFINE_SPEEDUP:.1f}x)"
    )

    report = {
        "corpus": {
            "documents": documents,
            "hot_documents": hot_documents,
            "elements": elements,
            "seed": args.seed,
            "depth_limit": 4,
            "index_entries": index.entry_count,
        },
        "workers": args.workers,
        "plan_cache_workload": plan_report,
        "refinement_workload": refine_report,
    }
    out = args.out
    if out is None and not args.quick:
        out = os.path.join(os.path.dirname(__file__), "..", "BENCH_query.json")
    if out is not None:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {os.path.abspath(out)}")

    if not ok:
        return 1
    if not args.quick:
        if plan_report["speedup"] < TARGET_PLAN_SPEEDUP:
            print(f"FAIL: plan-cache speedup below {TARGET_PLAN_SPEEDUP:.1f}x")
            return 1
        if refine_report["speedup"] < TARGET_REFINE_SPEEDUP:
            print(
                f"FAIL: refinement speedup below {TARGET_REFINE_SPEEDUP:.1f}x"
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
